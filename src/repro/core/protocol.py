"""Typed action/observation protocol between schedulers and the cluster.

Eva's §3 contract is "snapshot in, target configuration out".  This
module makes the *hand-off* explicit and typed instead of leaving every
backend to re-derive operations from a whole-state rewrite:

* **Actions** are the five primitive cluster operations —
  :class:`LaunchInstance`, :class:`TerminateInstance`,
  :class:`AssignTask`, :class:`UnassignTask`, :class:`MigrateTask` —
  bundled into an ordered :class:`Decision`.
* **Observations** are the typed events a scheduler may react to at a
  round: :class:`JobArrived`, :class:`JobFinished`,
  :class:`SpotEvictionNotice`, :class:`DeadlineApproaching`,
  :class:`InstanceFailed`, :class:`StragglerReport`,
  :class:`ThroughputReport`.
* :class:`ClusterEnvironment` is the driver interface: a backend (the
  discrete-event simulator, the live runtime master) implements the five
  primitives and inherits :meth:`ClusterEnvironment.execute`, the single
  shared interpreter of an action stream.  There is exactly one apply
  loop in the codebase — backends differ only in what a primitive does.
* :func:`diff_target` is the legacy shim: it converts a snapshot-to-
  :class:`~repro.cluster.state.TargetConfiguration` decision
  into the canonical ordered action list, so every existing
  ``Scheduler.schedule`` implementation keeps working unchanged while
  protocol-native policies implement
  ``decide(snapshot, observations) -> Decision`` directly.

**Canonical action order** (the order :func:`diff_target` emits and the
order every conforming decision must respect): launches first, then
task starts/migrations (ascending task id, as produced by
:func:`~repro.cluster.state.diff_configuration`), then terminations
(ascending instance id).  Backends rely on this — e.g. the simulator's
checkpoint-hold bookkeeping assumes a task has migrated off an instance
before that instance's termination is executed.

The contract is exercised with a hard byte-identity guarantee: routing
a legacy scheduler through ``diff_target`` + a backend's executor must
reproduce the pre-protocol ``SimulationResult`` bit for bit (see
``tests/test_golden_digests.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Union

from repro.cluster.instance import Instance
from repro.cluster.state import (
    ClusterSnapshot,
    TargetConfiguration,
    diff_configuration,
    tasks_fit_on_type,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.core.interfaces import JobThroughputReport

__all__ = [
    "Action",
    "AssignTask",
    "ClusterEnvironment",
    "Decision",
    "DeadlineApproaching",
    "InstanceFailed",
    "JobArrived",
    "JobFinished",
    "LaunchInstance",
    "MigrateTask",
    "Observation",
    "PoolExhausted",
    "PriceChanged",
    "ProtocolError",
    "SpotEvictionNotice",
    "StragglerReport",
    "TerminateInstance",
    "ThroughputReport",
    "count_job_events",
    "diff_target",
    "replay_decision",
    "throughput_reports",
]


class ProtocolError(ValueError):
    """An action stream violates the protocol's structural contract."""


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LaunchInstance:
    """Provision a fresh instance (id must not exist in the cluster)."""

    instance: Instance

    @property
    def instance_id(self) -> str:
        return self.instance.instance_id


@dataclass(frozen=True, slots=True)
class TerminateInstance:
    """Release an instance; it must host no tasks by the time this runs."""

    instance_id: str


@dataclass(frozen=True, slots=True)
class AssignTask:
    """First placement of a queued task onto an instance."""

    task_id: str
    instance_id: str


@dataclass(frozen=True, slots=True)
class UnassignTask:
    """Return a task to the queue without placing it elsewhere.

    The legacy ``diff_target`` path never emits this (a target simply
    omits tasks that should stay queued, and tasks it keeps assigned
    stay put); it exists for protocol-native policies and for
    environment-initiated evictions.
    """

    task_id: str
    instance_id: str


@dataclass(frozen=True, slots=True)
class MigrateTask:
    """Checkpoint a task on its source instance and resume it on another."""

    task_id: str
    src_instance_id: str
    dst_instance_id: str


Action = Union[LaunchInstance, TerminateInstance, AssignTask, UnassignTask, MigrateTask]


@dataclass(frozen=True)
class Decision:
    """One scheduling round's ordered action bundle.

    ``target`` optionally carries the legacy
    :class:`~repro.cluster.state.TargetConfiguration` the actions were
    derived from (set by :func:`diff_target`); validation uses it for
    the classic whole-configuration checks on top of the action-level
    replay.  Protocol-native decisions may leave it ``None``.
    """

    actions: tuple[Action, ...] = field(default=())
    target: TargetConfiguration | None = None

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def count(self, action_type: type) -> int:
        return sum(1 for action in self.actions if isinstance(action, action_type))

    def validate(
        self,
        snapshot: ClusterSnapshot,
        allowed_actions: frozenset[type] | None = None,
    ) -> None:
        """Raise if this decision is structurally invalid against ``snapshot``.

        Checks the emitter's declared action vocabulary when one is
        given (see :attr:`~repro.core.interfaces.Scheduler.action_types`),
        then the legacy target invariants when a target is attached
        (unknown tasks, duplicate assignment, over-subscription), then
        replays the action stream, which enforces the action-level
        contract (see :func:`replay_decision`).  Enforcement lives here,
        in the protocol layer, so every environment applies the same
        rules.
        """
        if allowed_actions is not None:
            for action in self.actions:
                if type(action) not in allowed_actions:
                    raise ProtocolError(
                        f"decision contains {type(action).__name__}, outside "
                        f"the declared action vocabulary"
                    )
        if self.target is not None:
            self.target.validate(snapshot)
        replay_decision(snapshot, self)


# ---------------------------------------------------------------------------
# Observations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class JobArrived:
    """A job was submitted since the last scheduling round."""

    job_id: str
    time_s: float


@dataclass(frozen=True, slots=True)
class JobFinished:
    """A job completed (and its tasks were torn down) since the last round."""

    job_id: str
    time_s: float


@dataclass(frozen=True, slots=True)
class SpotEvictionNotice:
    """The spot market will reclaim ``instance_id`` at ``eviction_time_s``.

    Emitted ahead of the preemption when the spot configuration grants a
    notice window (``SpotConfig.notice_s``); a notice may outlive its
    instance (the market can reclaim it before the next round), so
    consumers must prune against the snapshot.
    """

    instance_id: str
    eviction_time_s: float


@dataclass(frozen=True, slots=True)
class DeadlineApproaching:
    """A job with a deadline is within the warning horizon of missing it."""

    job_id: str
    deadline_s: float


@dataclass(frozen=True, slots=True)
class InstanceFailed:
    """``instance_id`` crashed abruptly at ``time_s`` (no graceful notice).

    ``failure_domain`` identifies the instance's failure domain (rack /
    AZ analogue) so hazard-estimating policies can attribute correlated
    shocks.  The instance is already gone when the observation is
    delivered; its tasks rolled back to their last completed checkpoint
    and returned to the queue.
    """

    instance_id: str
    time_s: float
    failure_domain: int


@dataclass(frozen=True, slots=True)
class StragglerReport:
    """``instance_id`` runs at ``slowdown`` × its nominal speed.

    Emitted when a straggler fault begins (``slowdown < 1``) and again
    when it clears (``slowdown == 1.0``).  A report may outlive its
    instance, so consumers must prune against the snapshot.
    """

    instance_id: str
    time_s: float
    slowdown: float


@dataclass(frozen=True, slots=True)
class PriceChanged:
    """A market pool's spot price moved to a new level.

    ``multiplier`` scales the catalog on-demand rates of every family in
    ``families`` (the pool's catalog slice); ``previous`` is the level it
    replaced.  Emitted once per effective change — segments whose
    quantized price matches the current level are silent.
    """

    pool: str
    time_s: float
    multiplier: float
    previous: float
    families: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class PoolExhausted:
    """A launch landed beyond its market pool's capacity.

    The launch still succeeds — the provider waitlists it with an extra
    provisioning delay — but the pool is running hot; policies should
    treat ``families`` as scarce until launches stop tripping this.
    """

    pool: str
    time_s: float
    families: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class ThroughputReport:
    """One job's per-round throughput report (§5), as an observation."""

    report: "JobThroughputReport"


Observation = Union[
    JobArrived,
    JobFinished,
    SpotEvictionNotice,
    DeadlineApproaching,
    InstanceFailed,
    StragglerReport,
    PriceChanged,
    PoolExhausted,
    ThroughputReport,
]


def throughput_reports(
    observations: tuple[Observation, ...],
) -> tuple["JobThroughputReport", ...]:
    """Unwrap the :class:`ThroughputReport` observations, preserving order."""
    return tuple(
        obs.report for obs in observations if isinstance(obs, ThroughputReport)
    )


def count_job_events(observations: tuple[Observation, ...]) -> int:
    """Arrivals plus completions — the §4.5 D̂ estimator's event count."""
    return sum(
        1 for obs in observations if isinstance(obs, (JobArrived, JobFinished))
    )


# ---------------------------------------------------------------------------
# Legacy shim: TargetConfiguration -> canonical action list
# ---------------------------------------------------------------------------


def diff_target(snapshot: ClusterSnapshot, target: TargetConfiguration) -> Decision:
    """Plan the canonical action list moving ``snapshot`` to ``target``.

    This is the one interpretation of the legacy §3 contract: it wraps
    :func:`~repro.cluster.state.diff_configuration` and emits actions in
    the canonical order (launches, then assigns/migrations ascending by
    task id, then terminations ascending by instance id).  Tasks the
    target leaves unmentioned stay where they are — queued tasks stay
    queued, assigned tasks stay put — exactly as the pre-protocol apply
    paths behaved.
    """
    diff = diff_configuration(snapshot, target)
    actions: list[Action] = []
    for ti in diff.launches:
        actions.append(LaunchInstance(instance=ti.instance))
    for task_id, src, dst in diff.migrations:
        if src is None:
            actions.append(AssignTask(task_id=task_id, instance_id=dst))
        else:
            actions.append(
                MigrateTask(task_id=task_id, src_instance_id=src, dst_instance_id=dst)
            )
    for instance_id in diff.terminations:
        actions.append(TerminateInstance(instance_id=instance_id))
    return Decision(actions=tuple(actions), target=target)


# ---------------------------------------------------------------------------
# Structural replay (validation + round-trip testing)
# ---------------------------------------------------------------------------


def replay_decision(
    snapshot: ClusterSnapshot, decision: Decision
) -> dict[str, frozenset[str]]:
    """Apply ``decision`` structurally and return the final assignment.

    Replays the action stream against the snapshot's assignment state,
    raising :class:`ProtocolError` on any violation of the action
    contract:

    * ``LaunchInstance`` ids must be fresh;
    * ``AssignTask`` must target a live, currently unassigned task;
    * ``MigrateTask`` must move a task from the instance it is on to a
      different instance;
    * ``UnassignTask`` must name the task's current instance;
    * ``TerminateInstance`` must not strand tasks — every hosted task
      needs a matching unassign/migrate earlier in the stream;
    * after the final action, no surviving instance may be
      over-subscribed.  (Fit is a *final-state* property: within a
      stream, a task may legally arrive on an instance before another
      departs it, exactly as the checkpoint/resume overlap plays out on
      a real cluster.)

    Returns ``{instance_id: frozenset(task_ids)}`` after all actions,
    which makes the legacy round-trip property directly testable:
    ``replay_decision(s, diff_target(s, t))`` reproduces ``t`` for any
    target that keeps all assigned tasks assigned.
    """
    instances: dict[str, Instance] = {}
    hosted: dict[str, set[str]] = {}
    placed_on: dict[str, str] = {}
    for state in snapshot.instances:
        instances[state.instance_id] = state.instance
        hosted[state.instance_id] = set(state.task_ids)
        for tid in sorted(state.task_ids):
            placed_on[tid] = state.instance_id

    def _put(task_id: str, instance_id: str) -> None:
        if instance_id not in instances:
            raise ProtocolError(
                f"task {task_id} placed on unknown instance {instance_id}"
            )
        hosted[instance_id].add(task_id)
        placed_on[task_id] = instance_id

    def _take(task_id: str, instance_id: str) -> None:
        if placed_on.get(task_id) != instance_id:
            raise ProtocolError(
                f"task {task_id} is on {placed_on.get(task_id)!r}, "
                f"not {instance_id!r}"
            )
        hosted[instance_id].discard(task_id)
        del placed_on[task_id]

    for action in decision.actions:
        if isinstance(action, LaunchInstance):
            if action.instance_id in instances:
                raise ProtocolError(
                    f"launch of existing instance {action.instance_id}"
                )
            instances[action.instance_id] = action.instance
            hosted[action.instance_id] = set()
        elif isinstance(action, AssignTask):
            if action.task_id not in snapshot.tasks:
                raise ProtocolError(f"assign of unknown task {action.task_id}")
            if action.task_id in placed_on:
                raise ProtocolError(
                    f"assign of task {action.task_id} already on "
                    f"{placed_on[action.task_id]} (use MigrateTask)"
                )
            _put(action.task_id, action.instance_id)
        elif isinstance(action, MigrateTask):
            if action.src_instance_id == action.dst_instance_id:
                raise ProtocolError(
                    f"migration of task {action.task_id} onto its own instance"
                )
            _take(action.task_id, action.src_instance_id)
            _put(action.task_id, action.dst_instance_id)
        elif isinstance(action, UnassignTask):
            _take(action.task_id, action.instance_id)
        elif isinstance(action, TerminateInstance):
            if action.instance_id not in instances:
                raise ProtocolError(
                    f"termination of unknown instance {action.instance_id}"
                )
            if hosted[action.instance_id]:
                raise ProtocolError(
                    f"termination of instance {action.instance_id} strands "
                    f"tasks {sorted(hosted[action.instance_id])}"
                )
            del instances[action.instance_id]
            del hosted[action.instance_id]
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown action {action!r}")
    for instance_id in sorted(hosted):
        instance = instances[instance_id]
        tasks = [snapshot.tasks[tid] for tid in sorted(hosted[instance_id])]
        if not tasks_fit_on_type(tasks, instance.instance_type):
            raise ProtocolError(
                f"instance {instance_id} ({instance.instance_type.name}) "
                f"over-subscribed by tasks {sorted(hosted[instance_id])}"
            )
    return {iid: frozenset(tids) for iid, tids in hosted.items()}


# ---------------------------------------------------------------------------
# Environment driver
# ---------------------------------------------------------------------------


class ClusterEnvironment(ABC):
    """Backend interface executing canonical action streams.

    Subclasses implement the five primitives against their substrate
    (simulated event queue, RPC-driven workers, ...) and inherit
    :meth:`execute`, the single shared interpreter — there must be no
    other apply loop.  ``begin_decision``/``finish_decision`` bracket a
    decision for backends that keep per-round state (e.g. the
    simulator's checkpoint-hold map).
    """

    @abstractmethod
    def launch_instance(self, action: LaunchInstance) -> None:
        """Provision the instance (and whatever worker rides on it)."""

    @abstractmethod
    def assign_task(self, action: AssignTask) -> None:
        """Start a queued task on an instance."""

    @abstractmethod
    def unassign_task(self, action: UnassignTask) -> None:
        """Checkpoint a task and return it to the queue."""

    @abstractmethod
    def migrate_task(self, action: MigrateTask) -> None:
        """Checkpoint a task on its source and resume it on the destination."""

    @abstractmethod
    def terminate_instance(self, action: TerminateInstance) -> None:
        """Release an (empty) instance."""

    def begin_decision(self) -> None:
        """Hook before the first action of a decision (default: no-op)."""

    def finish_decision(self) -> None:
        """Hook after the last action of a decision (default: no-op)."""

    def execute(self, decision: Decision) -> None:
        """Run every action of ``decision`` in order (the one apply loop)."""
        self.begin_decision()
        for action in decision.actions:
            if isinstance(action, LaunchInstance):
                self.launch_instance(action)
            elif isinstance(action, AssignTask):
                self.assign_task(action)
            elif isinstance(action, MigrateTask):
                self.migrate_task(action)
            elif isinstance(action, UnassignTask):
                self.unassign_task(action)
            elif isinstance(action, TerminateInstance):
                self.terminate_instance(action)
            else:  # pragma: no cover - defensive
                raise ProtocolError(f"unknown action {action!r}")
        self.finish_decision()
