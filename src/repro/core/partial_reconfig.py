"""Partial Reconfiguration (§4.5).

Full Reconfiguration ignores the current cluster configuration, which can
imply wholesale task migration.  Partial Reconfiguration instead keeps the
majority of the configuration fixed and re-packs only a subset of tasks:

* tasks of recently submitted jobs that have not been assigned yet, and
* tasks on instances that are *no longer cost-efficient* — their
  (throughput-normalized) reservation price dropped below the instance's
  hourly cost, due to job completions or observed interference.

The subset is first offered to surviving (still cost-efficient) instances
with spare capacity — additions must pass the same line 9–11 guard, so a
survivor's value never decreases — and the remainder is packed with
Algorithm 1.  Instances fully drained by subset extraction are reusable in
place (matched back by type), avoiding spurious relaunches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.instance import Instance
from repro.cluster.task import Task
from repro.core.evaluation import AssignmentEvaluator
from repro.core.full_reconfig import (
    PackedInstance,
    PackMemo,
    _make_scan,
    _TaskPool,
    full_reconfiguration,
    match_existing_instances,
)

_EPS = 1e-9


@dataclass(frozen=True)
class PartialReconfigResult:
    """Outcome of Partial Reconfiguration.

    Attributes:
        configuration: The full target configuration (survivors with any
            additions, plus re-packed instances).
        repacked_task_ids: Tasks that were (re)assigned this round.
        drained_instance_ids: Previously live instances whose tasks were
            all extracted; those not reused are terminated.
    """

    configuration: tuple[PackedInstance, ...]
    repacked_task_ids: frozenset[str]
    drained_instance_ids: frozenset[str]


def _fill_survivor(
    survivor: PackedInstance,
    pool: _TaskPool,
    evaluator: AssignmentEvaluator,
) -> PackedInstance:
    """Offer subset tasks to a surviving instance's spare capacity."""
    itype = survivor.instance_type
    tasks = list(survivor.tasks)
    state = evaluator.make_state(tasks)
    scan = _make_scan(pool, evaluator, itype.capacity, itype.family)
    for t in tasks:
        scan.charge(t)
    while True:
        best_task, best_value = scan.best(state)
        if best_task is None or best_value < state.value - _EPS:
            break
        pool.pop(best_task)
        state.add(best_task)
        tasks.append(best_task)
        scan.charge(best_task)
    if len(tasks) == len(survivor.tasks):
        return survivor
    return PackedInstance(instance=survivor.instance, tasks=tuple(tasks))


def partial_reconfiguration(
    current: Sequence[tuple[Instance, Sequence[Task]]],
    unassigned: Sequence[Task],
    instance_types: Sequence,
    evaluator: AssignmentEvaluator,
    group_identical: bool = True,
    cost_margin: float = 0.0,
    memo: PackMemo | None = None,
) -> PartialReconfigResult:
    """Compute the Partial Reconfiguration target (§4.5).

    Args:
        current: The live configuration: (instance, its tasks) pairs.
        unassigned: Tasks of newly submitted jobs awaiting placement.
        instance_types: The provisioning catalog.
        evaluator: RP or TNRP assignment evaluator.
        group_identical: See :func:`full_reconfiguration`.
        cost_margin: JCT-aware packing margin, applied to new packings
            only (the keep-or-drain test for existing instances uses the
            plain cost so the margin does not force churn).
        memo: Optional :class:`PackMemo` forwarded to the stage-2
            Algorithm 1 call.
    """
    survivors: list[PackedInstance] = []
    subset: list[Task] = list(unassigned)
    drained: list[tuple[Instance, frozenset[str]]] = []

    for instance, tasks in current:
        tasks = list(tasks)
        if not tasks:
            drained.append((instance, frozenset()))
            continue
        value = evaluator.set_value(tasks)
        if value >= instance.hourly_cost - _EPS:
            survivors.append(
                PackedInstance(instance=instance, tasks=tuple(tasks))
            )
        else:
            subset.extend(tasks)
            drained.append((instance, frozenset(t.task_id for t in tasks)))

    repacked_ids = frozenset(t.task_id for t in subset)

    # Stage 1 — fill surviving instances' spare capacity, most expensive
    # survivors first (mirrors Algorithm 1's type ordering).
    pool = _TaskPool(subset, evaluator, group_identical)
    filled: list[PackedInstance] = []
    for survivor in sorted(
        survivors, key=lambda p: (-p.hourly_cost, p.instance.instance_id)
    ):
        if pool.is_empty():
            filled.append(survivor)
        else:
            filled.append(_fill_survivor(survivor, pool, evaluator))

    # Stage 2 — pack the remainder with Algorithm 1 and reuse drained
    # instances of matching types where possible.
    leftovers = pool.drain()
    fresh = full_reconfiguration(
        leftovers,
        instance_types,
        evaluator,
        group_identical=group_identical,
        cost_margin=cost_margin,
        memo=memo,
    )
    fresh = match_existing_instances(fresh, drained)

    return PartialReconfigResult(
        configuration=tuple(filled) + tuple(fresh),
        repacked_task_ids=repacked_ids,
        drained_instance_ids=frozenset(inst.instance_id for inst, _ in drained),
    )
