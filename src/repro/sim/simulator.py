"""High-fidelity cluster simulator (§5).

The simulator replays a trace against a scheduler exactly as a real
deployment would: jobs arrive, the scheduler runs at every scheduling
period, the Provisioner/Executor operations it implies (instance launches
and terminations, task placements and migrations) are applied with the
measured Table 1 delays, and job progress accrues at interference-degraded
rates drawn from the ground-truth model (Figure 1 data).  The scheduler
never sees the ground truth — interference reaches it only through
per-round throughput reports, as in the real system.

Cost accounting bills every instance per second from launch request to
termination, so acquisition/setup delays and migration stalls show up as
paid-but-idle time (§2.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

import numpy as np

from repro.cloud.delays import DelayModel
from repro.cloud.market import MarketConfig, MarketRuntime
from repro.cloud.provider import SimulatedCloud
from repro.cluster.state import ClusterSnapshot, InstanceState
from repro.cluster.task import Job, Task
from repro.core.interfaces import JobThroughputReport, Scheduler
from repro.core.protocol import (
    AssignTask,
    ClusterEnvironment,
    DeadlineApproaching,
    InstanceFailed,
    JobArrived,
    JobFinished,
    LaunchInstance,
    MigrateTask,
    Observation,
    PoolExhausted,
    PriceChanged,
    SpotEvictionNotice,
    StragglerReport,
    TerminateInstance,
    ThroughputReport,
    UnassignTask,
)
from repro.core.throughput_table import TaskPlacementObservation
from repro.interference.model import InterferenceModel
from repro.sim.accounting import ClusterAccounting
from repro.sim.engine import Event, EventKind, EventQueue
from repro.sim.metrics import (
    AllocationIntegrator,
    DeadlineOutcome,
    FailureOutcome,
    JobOutcome,
    RepairOutcome,
    SimulationResult,
)
from repro.workloads.trace import Trace

#: Default scheduling period (§3 suggests e.g. 5 minutes).
DEFAULT_PERIOD_S = 300.0


@dataclass(frozen=True)
class SpotConfig:
    """Spot-market configuration (the §7 "cheaper, preemptible spot
    instances" extension).

    When enabled, every launch is a spot request: billed at
    ``SimulatedCloud.spot_discount`` of the on-demand price, and
    preempted after an exponentially distributed lifetime with the given
    rate.  Preempted instances vanish; their tasks are checkpointed (the
    two-minute interruption notice suffices for the Table-7 checkpoint
    times) and return to the queue for the next scheduling round.

    ``notice_s`` grants schedulers an *advance eviction warning*: that
    many seconds before an instance is reclaimed, the simulator emits a
    :class:`~repro.core.protocol.SpotEvictionNotice` observation and
    arms a scheduling round, so eviction-aware policies can drain the
    doomed instance while it is still running.  Notices are delivered
    at scheduling rounds, so a notice window shorter than the period
    may be observed too late to react; ``notice_s >= period_s`` makes
    at least one reacting round certain.  ``0`` (the default) disables
    notices and reproduces the classic no-warning spot market
    byte-identically.
    """

    enabled: bool = False
    preemption_rate_per_hour: float = 0.05
    seed: int = 0
    notice_s: float = 0.0

    def __post_init__(self) -> None:
        if self.enabled:
            if not math.isfinite(self.preemption_rate_per_hour):
                raise ValueError(
                    f"preemption rate must be finite, "
                    f"got {self.preemption_rate_per_hour}"
                )
            if self.preemption_rate_per_hour <= 0:
                raise ValueError("preemption rate must be positive when enabled")
        if not math.isfinite(self.notice_s):
            raise ValueError(f"notice_s must be finite, got {self.notice_s}")
        if self.notice_s < 0:
            raise ValueError("notice_s must be >= 0")


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")


@dataclass(frozen=True)
class RetryPolicy:
    """How failed tasks are retried and how often progress is saved.

    Attributes:
        backoff_base_s: First-retry delay of a failed task; doubles with
            every subsequent failure of the same task (capped).  ``0``
            disables backoff (failed tasks requeue immediately).
        backoff_cap_s: Upper bound on the per-task retry delay.
        checkpoint_interval_s: Wall-clock cadence of job checkpoints; a
            crash rolls a job back to its last completed checkpoint, so
            shorter intervals lose less work.
        checkpoint_overhead: Fraction of throughput spent writing
            checkpoints (``[0, 1)``) — the cost side of the cadence
            trade-off, charged against every running job's rate while
            failure injection is enabled.
    """

    backoff_base_s: float = 60.0
    backoff_cap_s: float = 3600.0
    checkpoint_interval_s: float = 1800.0
    checkpoint_overhead: float = 0.0

    def __post_init__(self) -> None:
        _require_finite("backoff_base_s", self.backoff_base_s)
        _require_finite("backoff_cap_s", self.backoff_cap_s)
        _require_finite("checkpoint_interval_s", self.checkpoint_interval_s)
        _require_finite("checkpoint_overhead", self.checkpoint_overhead)
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")
        if self.checkpoint_interval_s <= 0:
            raise ValueError("checkpoint_interval_s must be positive")
        if not 0.0 <= self.checkpoint_overhead < 1.0:
            raise ValueError("checkpoint_overhead must be in [0, 1)")


@dataclass(frozen=True)
class FailureConfig:
    """Stochastic fault-injection configuration (ROADMAP open item 5).

    Three fault processes, all disabled by default (and byte-identical
    to the fault-free simulator when disabled — the golden digest
    matrices pin this):

    * **Independent crashes**: every instance draws an exponential
      time-to-crash at launch (rate ``crash_rate_per_hour``).  Unlike
      spot preemption there is no graceful notice: affected jobs roll
      back to their last completed checkpoint
      (:class:`RetryPolicy.checkpoint_interval_s`), making
      ``_TaskRT.resume_version`` work-loss accounting real.
    * **Correlated domain shocks**: instances are assigned round-robin
      to ``num_domains`` failure domains (rack/AZ analogue); a Poisson
      process (rate ``domain_shock_rate_per_hour``) kills *every* alive
      instance in a uniformly drawn domain at once.
    * **Stragglers**: each instance draws an exponential onset (rate
      ``straggler_rate_per_hour``) after which its effective throughput
      is multiplied by a factor uniform in ``straggler_slowdown`` for
      ``straggler_duration_s`` seconds, then recovers.

    Faults surface on the typed observation channel
    (:class:`~repro.core.protocol.InstanceFailed`,
    :class:`~repro.core.protocol.StragglerReport`) so policies can react
    without snapshot sniffing.  Two independent seeded streams drive the
    draws: per-launch draws (crash, straggler) and the domain-shock
    process, so shock timing does not depend on how many instances a
    scheduler launched.
    """

    enabled: bool = False
    crash_rate_per_hour: float = 0.0
    num_domains: int = 4
    domain_shock_rate_per_hour: float = 0.0
    straggler_rate_per_hour: float = 0.0
    straggler_slowdown: tuple[float, float] = (0.3, 0.7)
    straggler_duration_s: float = 3600.0
    seed: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        for name in (
            "crash_rate_per_hour",
            "domain_shock_rate_per_hour",
            "straggler_rate_per_hour",
            "straggler_duration_s",
        ):
            value = getattr(self, name)
            _require_finite(name, value)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.straggler_duration_s <= 0:
            raise ValueError("straggler_duration_s must be positive")
        if self.num_domains < 1:
            raise ValueError("num_domains must be >= 1")
        lo, hi = self.straggler_slowdown
        _require_finite("straggler_slowdown[0]", lo)
        _require_finite("straggler_slowdown[1]", hi)
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError(
                "straggler_slowdown must satisfy 0 < lo <= hi <= 1, "
                f"got {self.straggler_slowdown}"
            )


_WORK_EPS = 1e-9


class TaskStatus(Enum):
    QUEUED = "queued"  # never placed
    PENDING = "pending"  # placed; waiting for instance/migration delays
    RUNNING = "running"


@dataclass
class _TaskRT:
    task: Task
    status: TaskStatus = TaskStatus.QUEUED
    instance_id: str | None = None
    resume_version: int = 0
    #: Instance crashes this task has survived (drives the capped
    #: exponential retry backoff; scheduler unassigns don't count).
    failures: int = 0
    #: Earliest time the task may resume after a failure (capped
    #: exponential backoff); 0.0 — never constraining — without faults.
    retry_until_s: float = 0.0


@dataclass
class _JobRT:
    job: Job
    arrival_s: float
    work_done_h: float = 0.0
    rate: float = 0.0
    last_update_s: float = 0.0
    idle_h: float = 0.0
    finish_version: int = 0
    finished: bool = False
    finish_s: float = 0.0
    #: Immutable task_id → Task map, built once at arrival and reused by
    #: every snapshot instead of re-walking ``job.tasks``.
    task_map: dict[str, Task] = field(default_factory=dict)
    #: Checkpoint cadence in wall-clock seconds; None when failure
    #: injection is off (the rollback machinery then costs nothing).
    ckpt_interval_s: float | None = None
    #: Work recorded at the last completed checkpoint — what an abrupt
    #: crash rolls ``work_done_h`` back to.
    ckpt_work_h: float = 0.0
    #: Time of the last completed checkpoint (anchored at arrival).
    last_ckpt_s: float = 0.0
    #: Start of the current failure outage, or None when healthy; spans
    #: from an instance crash until the job's rate recovers above zero
    #: (per-job MTTR accumulates from these).
    outage_start_s: float | None = None

    def advance(self, now_s: float) -> None:
        """Integrate progress (and idle time) up to ``now_s``."""
        dt_h = (now_s - self.last_update_s) / 3600.0
        if dt_h <= 0:
            return
        interval = self.ckpt_interval_s
        if interval is not None:
            # Complete every checkpoint boundary crossed in this span.
            # ``last_ckpt_s + interval > last_update_s`` holds because
            # every advance consumes its boundaries, so the rate is
            # constant from ``last_update_s`` to the latest boundary and
            # the work there is exact.
            periods = (now_s - self.last_ckpt_s) // interval
            if periods >= 1.0:
                boundary_s = self.last_ckpt_s + periods * interval
                self.ckpt_work_h = self.work_done_h + self.rate * (
                    (boundary_s - self.last_update_s) / 3600.0
                )
                self.last_ckpt_s = boundary_s
        if self.rate > 0:
            self.work_done_h += self.rate * dt_h
        else:
            self.idle_h += dt_h
        self.last_update_s = now_s

    @property
    def remaining_h(self) -> float:
        return max(0.0, self.job.duration_hours - self.work_done_h)


@dataclass
class _InstanceRT:
    instance_state_instance: object  # Instance; kept loose to avoid import cycle
    ready_time_s: float
    assigned: set[str] = field(default_factory=set)
    alive: bool = True
    #: Sorted workloads of the RUNNING tasks on this instance; None when a
    #: membership/status change invalidated it (recomputed lazily).
    running_cache: tuple[str, ...] | None = None
    #: Frozen copy of ``assigned`` for snapshots; None when stale.
    frozen_cache: frozenset[str] | None = None
    #: Round-robin failure-domain id (rack/AZ analogue); only assigned
    #: when fault injection is on.
    failure_domain: int = 0
    #: Straggler multiplier on effective throughput; 1.0 when healthy.
    slowdown: float = 1.0
    #: Burstable-credit multiplier; 1.0 until the instance exhausts its
    #: CPU credits (kept separate from ``slowdown`` so a straggler fault
    #: and credit exhaustion compose instead of clobbering each other).
    credit_mult: float = 1.0
    #: Whether the instance was launched on the spot market (price-change
    #: re-rating must keep the spot discount in the new rate).
    spot: bool = False
    #: Per-run launch ordinal (0 = the run's first launch).  Result
    #: records use this instead of ``instance_id``: ids come from a
    #: process-global counter, so embedding one would break run-to-run
    #: and serial-vs-parallel byte identity.
    launch_index: int = 0

    @property
    def instance(self):
        return self.instance_state_instance

    @property
    def instance_id(self) -> str:
        return self.instance.instance_id

    def invalidate(self) -> None:
        self.running_cache = None
        self.frozen_cache = None


class SimulationError(RuntimeError):
    """Raised on internal inconsistencies or runaway simulations."""


class _SimEnvironment(ClusterEnvironment):
    """Simulator backend of the action protocol.

    Implements the five primitives against the discrete-event state —
    cloud ledger, runtime tables, delay-model draws, event queue — and
    inherits the shared action interpreter from
    :class:`~repro.core.protocol.ClusterEnvironment`.  Checkpoint holds
    (a migrating task's source instance must stay up until its
    checkpoint completes) are per-decision state, reset by
    ``begin_decision``; the canonical action order guarantees every
    migration off an instance precedes that instance's termination.
    """

    def __init__(self, sim: "ClusterSimulator"):
        self._sim = sim
        self._hold_until: dict[str, float] = {}

    def begin_decision(self) -> None:
        self._hold_until.clear()

    def launch_instance(self, action: LaunchInstance) -> None:
        sim = self._sim
        instance = action.instance
        # Schedulers may opt out of the spot market per round by setting
        # a ``use_spot = False`` attribute (the eva-market on-demand
        # fallback during eviction storms): the launch then bills at the
        # full on-demand rate and draws no preemption lifetime.  Absent
        # the attribute this is exactly ``sim.spot.enabled``.
        spot_launch = sim.spot.enabled and bool(
            getattr(sim.scheduler, "use_spot", True)
        )
        receipt = sim.cloud.launch(
            instance.instance_type,
            sim.now_s,
            instance=instance,
            spot=spot_launch,
        )
        rt = _InstanceRT(
            instance_state_instance=instance,
            ready_time_s=receipt.ready_time_s,
            launch_index=sim._launch_seq,
            spot=spot_launch,
        )
        sim._launch_seq += 1
        sim._instances[instance.instance_id] = rt
        sim._placement_epoch += 1
        sim._acct.instance_up(instance.instance_type)
        if sim._market_rt is not None:
            if receipt.pool_exhausted:
                sim._pool_exhaustions += 1
                index = sim._market_rt.pool_index_for_family(
                    instance.instance_type.family
                )
                sim._pending_obs.append(
                    PoolExhausted(
                        pool=receipt.pool,
                        time_s=sim.now_s,
                        families=sim._market_rt.pool(index).families,
                    )
                )
            credits = sim.market.credits
            if (
                sim._credit_enabled
                and instance.instance_type.family in credits.families
            ):
                # Exhaustion is deterministic from the launch timestamp
                # (fixed net burn while billed; see CreditModel).
                sim.queue.push(
                    Event(
                        sim.now_s + credits.exhaustion_horizon_s,
                        EventKind.CREDIT_EXHAUSTED,
                        instance.instance_id,
                    )
                )
        if sim._fail_enabled:
            fail = sim.failures
            rt.failure_domain = sim._next_domain
            sim._next_domain = (sim._next_domain + 1) % fail.num_domains
            # Fixed per-launch draw order (crash lifetime, then straggler
            # onset + factor) keeps the stream deterministic regardless
            # of which events later turn out stale.
            if fail.crash_rate_per_hour > 0:
                life_s = float(
                    sim._fail_rng.exponential(
                        3600.0 / fail.crash_rate_per_hour
                    )
                )
                sim.queue.push(
                    Event(
                        sim.now_s + life_s,
                        EventKind.INSTANCE_FAILURE,
                        ("instance", instance.instance_id),
                    )
                )
            if fail.straggler_rate_per_hour > 0:
                onset_s = float(
                    sim._fail_rng.exponential(
                        3600.0 / fail.straggler_rate_per_hour
                    )
                )
                lo, hi = fail.straggler_slowdown
                factor = float(sim._fail_rng.uniform(lo, hi))
                sim.queue.push(
                    Event(
                        sim.now_s + onset_s,
                        EventKind.SLOWDOWN_START,
                        (instance.instance_id, factor),
                    )
                )
        if spot_launch:
            rate_per_hour = sim.spot.preemption_rate_per_hour
            if (
                sim._market_rt is not None
                and sim.market.eviction_coupling != 0.0
            ):
                # Price pressure at launch scales the eviction hazard:
                # hot markets reclaim discounted capacity faster.  The
                # guard keeps the legacy draw arithmetic untouched when
                # no market (or no coupling) is configured.
                mult = sim._market_rt.multiplier_at(
                    instance.instance_type, sim.now_s
                )
                if mult != 1.0:
                    rate_per_hour = rate_per_hour * (
                        mult**sim.market.eviction_coupling
                    )
            lifetime_s = float(
                sim._spot_rng.exponential(3600.0 / rate_per_hour)
            )
            preempt_at = sim.now_s + lifetime_s
            sim.queue.push(
                Event(
                    preempt_at,
                    EventKind.INSTANCE_PREEMPTION,
                    instance.instance_id,
                )
            )
            if sim.spot.notice_s > 0:
                sim.queue.push(
                    Event(
                        max(sim.now_s, preempt_at - sim.spot.notice_s),
                        EventKind.EVICTION_NOTICE,
                        (instance.instance_id, preempt_at),
                    )
                )

    def assign_task(self, action: AssignTask) -> None:
        sim = self._sim
        sim._placements += 1
        self._start_task(
            sim._tasks[action.task_id],
            action.instance_id,
            checkpoint_done=sim.now_s,
        )

    def migrate_task(self, action: MigrateTask) -> None:
        sim = self._sim
        task_rt = sim._tasks[action.task_id]
        task = task_rt.task
        src_rt = sim._instances[action.src_instance_id]
        src_rt.assigned.discard(action.task_id)
        src_rt.invalidate()
        if src_rt.alive:
            sim._acct.task_unassigned(task, src_rt.instance.instance_type)
        checkpoint = sim.delay_model.checkpoint_s(task.migration.checkpoint_s)
        self._hold_until[action.src_instance_id] = max(
            self._hold_until.get(action.src_instance_id, 0.0),
            sim.now_s + checkpoint,
        )
        sim._migrations += 1
        self._start_task(
            task_rt,
            action.dst_instance_id,
            checkpoint_done=sim.now_s + checkpoint,
        )

    def unassign_task(self, action: UnassignTask) -> None:
        sim = self._sim
        task_rt = sim._tasks[action.task_id]
        task = task_rt.task
        src_rt = sim._instances[action.instance_id]
        src_rt.assigned.discard(action.task_id)
        src_rt.invalidate()
        if src_rt.alive:
            sim._acct.task_unassigned(task, src_rt.instance.instance_type)
        # The checkpoint keeps the task's progress; the source must stay
        # up (and billed) until it completes, like a migration's source.
        checkpoint = sim.delay_model.checkpoint_s(task.migration.checkpoint_s)
        self._hold_until[action.instance_id] = max(
            self._hold_until.get(action.instance_id, 0.0),
            sim.now_s + checkpoint,
        )
        task_rt.status = TaskStatus.QUEUED
        task_rt.instance_id = None
        task_rt.resume_version += 1
        sim._placement_epoch += 1

    def terminate_instance(self, action: TerminateInstance) -> None:
        sim = self._sim
        iid = action.instance_id
        rt = sim._instances.get(iid)
        if rt is None or not rt.alive:
            return
        if rt.assigned:
            raise SimulationError(
                f"terminating instance {iid} with assigned tasks {rt.assigned}"
            )
        rt.alive = False
        sim._placement_epoch += 1
        sim._acct.instance_down(rt.instance.instance_type)
        when = self._hold_until.get(iid, sim.now_s)
        if when <= sim.now_s:
            sim.cloud.terminate(iid, sim.now_s)
            del sim._instances[iid]
        else:
            sim._terminate_holds[iid] = when
            sim.queue.push(Event(when, EventKind.INSTANCE_TERMINATE, iid))

    def _start_task(
        self, task_rt: _TaskRT, dst: str, checkpoint_done: float
    ) -> None:
        """Shared placement tail: bind the task and queue its resume."""
        sim = self._sim
        task = task_rt.task
        dst_rt = sim._instances[dst]
        dst_rt.assigned.add(task.task_id)
        dst_rt.invalidate()
        sim._acct.task_assigned(task, dst_rt.instance.instance_type)
        task_rt.instance_id = dst
        task_rt.status = TaskStatus.PENDING
        task_rt.resume_version += 1
        sim._placement_epoch += 1
        # Delays are sequential (Table 1): the checkpoint must finish
        # AND the destination must be up before the task launch delay
        # starts.
        launch = sim.delay_model.launch_s(task.migration.launch_s)
        resume = max(dst_rt.ready_time_s, checkpoint_done) + launch
        if task_rt.retry_until_s > resume:
            # Capped exponential backoff of a repeatedly failing task:
            # the placement happens, but the restart waits out the
            # cooldown (0.0 without faults — never constraining).
            resume = task_rt.retry_until_s
        sim.queue.push(
            Event(
                resume,
                EventKind.TASK_READY,
                (task.task_id, task_rt.resume_version),
            )
        )


class ClusterSimulator:
    """Replays a trace against one scheduler and collects metrics.

    Args:
        trace: Arrival-ordered jobs.
        scheduler: Any :class:`~repro.core.interfaces.Scheduler`.
        interference: Ground-truth co-location model (Figure 1 data by
            default).
        delay_model: Reconfiguration delay model (Table 1 means by
            default).
        period_s: Scheduling period.
        validate: Validate every target configuration against its
            snapshot (slower; on by default in tests).
        max_sim_hours: Safety bound on simulated time.
        spot: Optional spot-market configuration (discounted, preemptible
            instances).
        deadline_warning_s: Horizon of the
            :class:`~repro.core.protocol.DeadlineApproaching` warning: a
            deadline-bearing job's warning is emitted at the first
            scheduling round within this many seconds of its deadline
            (once per job — warnings are deduplicated across rounds).
            ``None`` (the default) keeps the classic two-period horizon
            — the round that could still react plus one period of slack;
            large values tell deadline-aware policies about SLOs
            essentially at arrival.
        failures: Optional stochastic fault injection (crashes, domain
            shocks, stragglers; see :class:`FailureConfig`).  ``None``
            or a disabled config reproduces the fault-free simulator
            byte-identically.
        market: Optional spot-market economics (per-pool price traces,
            finite capacity, burstable credits; see
            :class:`~repro.cloud.market.MarketConfig`).  ``None``, a
            disabled config, or a single static-price pool at
            multiplier 1 reproduces the market-free simulator
            byte-identically.
    """

    def __init__(
        self,
        trace: Trace,
        scheduler: Scheduler,
        interference: InterferenceModel | None = None,
        delay_model: DelayModel | None = None,
        period_s: float = DEFAULT_PERIOD_S,
        validate: bool = False,
        max_sim_hours: float = 24.0 * 365 * 10,
        spot: SpotConfig | None = None,
        deadline_warning_s: float | None = None,
        failures: FailureConfig | None = None,
        market: MarketConfig | None = None,
    ):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if deadline_warning_s is not None and deadline_warning_s < 0:
            raise ValueError("deadline_warning_s must be >= 0")
        self.trace = trace
        self.scheduler = scheduler
        self.interference = interference or InterferenceModel()
        self.delay_model = delay_model or DelayModel()
        self.period_s = period_s
        self.validate = validate
        self.max_sim_hours = max_sim_hours
        self.spot = spot or SpotConfig()
        self._spot_rng = np.random.default_rng(self.spot.seed)
        self._preemptions = 0
        self.failures = failures or FailureConfig()
        self._fail_enabled = self.failures.enabled
        #: Two independent streams (see :class:`FailureConfig`): one for
        #: per-launch draws (crash lifetime, straggler onset + factor),
        #: one for the domain-shock Poisson process, so shock timing does
        #: not depend on how many instances the scheduler launched.
        self._fail_rng = np.random.default_rng([self.failures.seed, 1])
        self._shock_rng = np.random.default_rng([self.failures.seed, 2])
        self._next_domain = 0
        self._launch_seq = 0
        #: Throughput multiplier charging checkpoint overhead against
        #: every running job; exactly 1.0 when faults are off, keeping
        #: the fault-free rate arithmetic byte-identical.
        self._ckpt_rate_mult = (
            1.0 - self.failures.retry.checkpoint_overhead
            if self._fail_enabled
            else 1.0
        )
        self._failure_outcomes: list[FailureOutcome] = []
        self._repair_outcomes: list[RepairOutcome] = []

        self.market = market or MarketConfig()
        #: Runtime market state (prices, capacity, membership); None on
        #: the no-market path, which then performs no price arithmetic.
        self._market_rt = (
            MarketRuntime(self.market) if self.market.active else None
        )
        credits = self.market.credits if self._market_rt is not None else None
        self._credit_enabled = credits is not None and bool(credits.families)
        self._price_changes = 0
        self._pool_exhaustions = 0
        self._credit_exhaustions = 0

        self.cloud = SimulatedCloud(
            delay_model=self.delay_model, market=self._market_rt
        )
        self.queue = EventQueue()
        self.now_s = 0.0

        self._jobs: dict[str, _JobRT] = {}
        self._tasks: dict[str, _TaskRT] = {}
        self._instances: dict[str, _InstanceRT] = {}
        self._terminate_holds: dict[str, float] = {}
        #: Epoch counter over placement-visible state: live jobs/tasks,
        #: task statuses, and task-to-instance assignments.  Everything
        #: the per-round snapshot and throughput reports are computed
        #: from is a pure function of this state, so while the epoch
        #: stands still those computations are served from caches below
        #: (steady-state rounds between job events dominate long traces).
        self._placement_epoch = 0
        self._reports_cache: tuple[JobThroughputReport, ...] = ()
        self._reports_epoch = -1
        self._snapshot_cache: tuple[dict, dict, tuple] | None = None
        self._snapshot_epoch = -1
        #: Epoch at which round-end rate refreshes last ran: when nothing
        #: placement-visible changed since, every live job's ground-truth
        #: rate is unchanged and already versioned (> 0), so the refresh
        #: would `continue` on every job — skip the walk entirely.
        self._rates_epoch = -1
        #: Timestamp of the queued scheduling round, or None when no round
        #: is armed.  Tracking the timestamp (not a bool) dedupes redundant
        #: round events: an arm request whose boundary is already covered
        #: by the queued round is a no-op, and a round event superseded by
        #: an earlier re-arm is recognized as stale in ``_on_round``.
        self._armed_round_s: float | None = None
        self._finished_jobs = 0
        self._outcomes: list[JobOutcome] = []
        self._migrations = 0
        self._placements = 0
        self._rounds = 0
        self.events_dispatched = 0
        self._alloc = AllocationIntegrator()
        self._acct = ClusterAccounting()
        self._accounting_time_s = 0.0
        #: Action-protocol backend; the single apply path.
        self._env = _SimEnvironment(self)
        #: Typed observations accumulated since the last scheduler call.
        self._pending_obs: list[Observation] = []
        #: Deadline warnings fire within this many seconds of a job's
        #: deadline (default: two periods — the round that could still
        #: react plus one of slack).
        self.deadline_warning_s = (
            2.0 * period_s if deadline_warning_s is None else deadline_warning_s
        )
        #: Jobs whose DeadlineApproaching warning was already emitted
        #: (warnings are delivered once, not re-emitted every round).
        self._deadline_warned: set[str] = set()
        #: Deadline-free traces skip the per-round warning scan outright.
        self._has_deadline_jobs = any(
            job.deadline_hours is not None for job in trace
        )
        #: Steady-round observation tuple, keyed by the identity of the
        #: (epoch-cached) reports tuple it wraps.
        self._obs_cache: tuple[Observation, ...] = ()
        self._obs_cache_src: tuple[JobThroughputReport, ...] | None = None
        #: Finish-order SLO records of deadline-bearing jobs.
        self._deadline_outcomes: list[DeadlineOutcome] = []

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        self.queue.push_all(
            Event(job.arrival_time_s, EventKind.JOB_ARRIVAL, job)
            for job in self.trace
        )
        if self._fail_enabled and self.failures.domain_shock_rate_per_hour > 0:
            self._schedule_next_shock()
        if self._market_rt is not None:
            # One self-scheduling PRICE_CHANGE stream per non-static
            # pool; a static pool (or an all-static market) arms nothing
            # and the event loop is untouched.
            for index, boundary in self._market_rt.initial_boundaries():
                self.queue.push(
                    Event(boundary, EventKind.PRICE_CHANGE, index)
                )
        total_jobs = len(self.trace)

        while self.queue:
            event = self.queue.pop()
            if event.time_s > self.max_sim_hours * 3600.0:
                raise SimulationError(
                    f"simulation exceeded {self.max_sim_hours} hours"
                )
            self._account_until(event.time_s)
            self.now_s = event.time_s
            self._dispatch(event)
            if self._finished_jobs == total_jobs:
                break

        self._drain_terminations()
        end_s = self.now_s
        uptimes = self.cloud.ledger.uptimes_hours(end_s)
        full_fraction = None
        adoption = getattr(self.scheduler, "full_adoption_fraction", None)
        if callable(adoption):
            full_fraction = adoption()
        return SimulationResult(
            scheduler_name=self.scheduler.name,
            trace_name=self.trace.name,
            total_cost=self.cloud.total_cost(end_s),
            jobs=sorted(self._outcomes, key=lambda o: o.job_id),
            instances_launched=self.cloud.ledger.instances_launched(),
            migrations=self._migrations,
            placements=self._placements,
            uptimes_hours=uptimes,
            allocation=self._alloc.allocation_ratios(),
            tasks_per_instance=self._alloc.tasks_per_instance(),
            makespan_hours=end_s / 3600.0,
            full_adoption_fraction=full_fraction,
            scheduling_rounds=self._rounds,
            preemptions=self._preemptions,
            # Finish order (deterministic), i.e. the order the O(delta)
            # totals accumulated in — so naive_deadline_totals over the
            # stored records reproduces the totals bit for bit.
            deadline_outcomes=tuple(self._deadline_outcomes),
            deadline_miss_count=self._acct.deadline_misses,
            deadline_total_lateness_s=self._acct.deadline_lateness_s,
            # Reliability records and O(1)-accumulated totals; all at
            # their defaults (and omitted from the pickle) without
            # fault injection.
            failure_outcomes=tuple(self._failure_outcomes),
            repair_outcomes=tuple(self._repair_outcomes),
            task_restarts=self._acct.task_restarts,
            work_lost_h=self._acct.work_lost_h,
            # Spot-market totals; all zero (and omitted from the pickle)
            # without an active market.
            price_changes=self._price_changes,
            pool_exhaustions=self._pool_exhaustions,
            credit_exhaustions=self._credit_exhaustions,
        )

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        self.events_dispatched += 1
        if event.kind == EventKind.JOB_ARRIVAL:
            self._on_arrival(event.payload)
        elif event.kind == EventKind.TASK_READY:
            task_id, version = event.payload
            self._on_task_ready(task_id, version)
        elif event.kind == EventKind.JOB_FINISH:
            job_id, version = event.payload
            self._on_job_finish(job_id, version)
        elif event.kind == EventKind.INSTANCE_PREEMPTION:
            self._on_instance_preemption(event.payload)
        elif event.kind == EventKind.INSTANCE_TERMINATE:
            self._on_instance_terminate(event.payload)
        elif event.kind == EventKind.EVICTION_NOTICE:
            instance_id, eviction_time_s = event.payload
            self._on_eviction_notice(instance_id, eviction_time_s)
        elif event.kind == EventKind.INSTANCE_FAILURE:
            scope, target = event.payload
            self._on_instance_failure(scope, target)
        elif event.kind == EventKind.SLOWDOWN_START:
            instance_id, factor = event.payload
            self._on_slowdown_start(instance_id, factor)
        elif event.kind == EventKind.SLOWDOWN_END:
            self._on_slowdown_end(event.payload)
        elif event.kind == EventKind.PRICE_CHANGE:
            self._on_price_change(event.payload)
        elif event.kind == EventKind.CREDIT_EXHAUSTED:
            self._on_credit_exhausted(event.payload)
        elif event.kind == EventKind.SCHEDULING_ROUND:
            self._on_round()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind}")

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _on_arrival(self, job: Job) -> None:
        rt = _JobRT(
            job=job,
            arrival_s=self.now_s,
            last_update_s=self.now_s,
            task_map={t.task_id: t for t in job.tasks},
        )
        if self._fail_enabled:
            # Checkpoint cadence anchors at arrival; a crash rolls the
            # job back to the last completed boundary.
            rt.ckpt_interval_s = self.failures.retry.checkpoint_interval_s
            rt.last_ckpt_s = self.now_s
        self._jobs[job.job_id] = rt
        for task in job.tasks:
            self._tasks[task.task_id] = _TaskRT(task=task)
        self._placement_epoch += 1
        self._pending_obs.append(JobArrived(job_id=job.job_id, time_s=self.now_s))
        self._ensure_round_scheduled()

    def _ensure_round_scheduled(self) -> None:
        periods_done = int(self.now_s // self.period_s)
        next_round = periods_done * self.period_s
        if next_round < self.now_s:
            next_round = (periods_done + 1) * self.period_s
        # An arrival exactly on a period boundary is handled by the round
        # at that same timestamp (rounds sort after arrivals).
        armed = self._armed_round_s
        if armed is not None and armed <= next_round:
            return  # a round at or before that boundary is already queued
        self.queue.push(Event(next_round, EventKind.SCHEDULING_ROUND))
        self._armed_round_s = next_round

    # ------------------------------------------------------------------
    # Scheduling rounds
    # ------------------------------------------------------------------
    def _live_job_ids(self) -> list[str]:
        return [jid for jid, rt in self._jobs.items() if not rt.finished]

    def _on_round(self) -> None:
        if self._armed_round_s is None or self.now_s != self._armed_round_s:
            return  # stale round event, superseded by an earlier re-arm
        self._armed_round_s = None
        live = self._live_job_ids()
        if not live:
            return  # next arrival re-arms the round cadence
        self._rounds += 1

        self._advance_all(live)
        snapshot = self._snapshot(live)
        decision = self.scheduler.decide(snapshot, self._round_observations(live))
        if self.validate:
            decision.validate(
                snapshot, allowed_actions=self.scheduler.action_types
            )
        self._env.execute(decision)
        if self._placement_epoch != self._rates_epoch:
            self._refresh_rates(live)
            self._rates_epoch = self._placement_epoch

        next_round = self.now_s + self.period_s
        self.queue.push(Event(next_round, EventKind.SCHEDULING_ROUND))
        self._armed_round_s = next_round

    def _snapshot(self, live: Sequence[str]) -> ClusterSnapshot:
        # The snapshot's collections are a pure function of the
        # placement epoch (`live` itself changes only with the epoch:
        # arrivals and finishes bump it), so steady-state rounds reuse
        # last round's dicts/tuple and only restamp the time.  Consumers
        # treat snapshots as immutable, which the frozen dataclass
        # already promises.
        if self._snapshot_epoch != self._placement_epoch:
            tasks: dict[str, Task] = {}
            jobs: dict[str, Job] = {}
            for jid in live:
                rt = self._jobs[jid]
                jobs[jid] = rt.job
                tasks.update(rt.task_map)
            instances = []
            for irt in self._instances.values():
                if not irt.alive:
                    continue
                frozen = irt.frozen_cache
                if frozen is None:
                    frozen = frozenset(irt.assigned)
                    irt.frozen_cache = frozen
                instances.append(
                    InstanceState(instance=irt.instance, task_ids=frozen)
                )
            instances.sort(key=lambda s: s.instance_id)
            self._snapshot_cache = (tasks, jobs, tuple(instances))
            self._snapshot_epoch = self._placement_epoch
        assert self._snapshot_cache is not None
        tasks, jobs, instance_states = self._snapshot_cache
        return ClusterSnapshot(
            time_s=self.now_s, tasks=tasks, jobs=jobs, instances=instance_states
        )

    def _round_observations(
        self, live: Sequence[str]
    ) -> tuple[Observation, ...]:
        """Drain and assemble this round's typed observation stream.

        Order is deterministic: events accumulated since the last
        scheduler call (arrivals, completions, eviction notices) in
        dispatch order, then deadline warnings for live deadline-bearing
        jobs (ascending job id), then per-job throughput reports.

        A job's :class:`~repro.core.protocol.DeadlineApproaching`
        warning is emitted exactly once — at the first round falling
        within ``deadline_warning_s`` of its deadline — mirroring how
        arrivals/completions fire once; consumers keep their own
        deadline map (pruned against the snapshot) like eviction-notice
        consumers do.
        """
        observations = self._pending_obs
        self._pending_obs = []
        if self._has_deadline_jobs:
            for jid in sorted(live):
                if jid in self._deadline_warned:
                    continue
                rt = self._jobs[jid]
                deadline_hours = rt.job.deadline_hours
                if deadline_hours is None:
                    continue
                deadline_s = rt.arrival_s + deadline_hours * 3600.0
                if self.now_s + self.deadline_warning_s >= deadline_s:
                    self._deadline_warned.add(jid)
                    observations.append(
                        DeadlineApproaching(job_id=jid, deadline_s=deadline_s)
                    )
        reports = self._throughput_reports(live)
        if observations:
            observations.extend(ThroughputReport(r) for r in reports)
            return tuple(observations)
        # Steady rounds: the epoch cache returns the same reports tuple,
        # so the wrapper tuple can be reused as-is.
        if reports is not self._obs_cache_src:
            self._obs_cache_src = reports
            self._obs_cache = tuple(ThroughputReport(r) for r in reports)
        return self._obs_cache

    def _throughput_reports(
        self, live: Sequence[str]
    ) -> tuple[JobThroughputReport, ...]:
        """Ground-truth job throughputs for fully running jobs (§5).

        Epoch-cached: reports depend only on placement-visible state
        (statuses, assignments, live set), so steady-state rounds return
        the *same tuple object* — which also lets the monitor's ingest
        fast path recognize an already-applied round of reports.
        """
        if self._reports_epoch == self._placement_epoch:
            return self._reports_cache
        reports = []
        for jid in sorted(live):
            rt = self._jobs[jid]
            task_rts = [self._tasks[t.task_id] for t in rt.job.tasks]
            if any(t.status is not TaskStatus.RUNNING for t in task_rts):
                continue
            placements = tuple(
                TaskPlacementObservation(
                    workload=t.task.workload,
                    neighbours=tuple(self._running_neighbours(t)),
                )
                for t in task_rts
            )
            reports.append(
                JobThroughputReport(
                    job_id=jid,
                    normalized_tput=self._job_rate(rt),
                    placements=placements,
                )
            )
        self._reports_cache = tuple(reports)
        self._reports_epoch = self._placement_epoch
        return self._reports_cache

    # ------------------------------------------------------------------
    # Task / job / instance events
    # ------------------------------------------------------------------
    def _on_task_ready(self, task_id: str, version: int) -> None:
        task_rt = self._tasks.get(task_id)
        if task_rt is None or task_rt.resume_version != version:
            return
        job_rt = self._jobs.get(task_rt.task.job_id)
        if job_rt is None or job_rt.finished:
            return
        affected = self._jobs_sharing_instance(task_rt.instance_id)
        affected.add(task_rt.task.job_id)
        self._advance_all(affected)
        task_rt.status = TaskStatus.RUNNING
        self._placement_epoch += 1
        inst = self._instances.get(task_rt.instance_id)
        if inst is not None:
            inst.running_cache = None
        self._refresh_rates(affected)

    def _on_job_finish(self, job_id: str, version: int) -> None:
        job_rt = self._jobs.get(job_id)
        if job_rt is None or job_rt.finished or job_rt.finish_version != version:
            return  # stale event from a superseded rate estimate
        job_rt.advance(self.now_s)
        if job_rt.remaining_h > 1e-6:
            raise SimulationError(
                f"job {job_id} finish event fired with {job_rt.remaining_h:.6f}h left"
            )
        affected: set[str] = set()
        for task in job_rt.job.tasks:
            task_rt = self._tasks[task.task_id]
            iid = task_rt.instance_id
            if iid is not None:
                affected |= self._jobs_sharing_instance(iid)
        affected.discard(job_id)
        self._advance_all(affected)

        job_rt.finished = True
        job_rt.finish_s = self.now_s
        self._placement_epoch += 1
        self._finished_jobs += 1
        for task in job_rt.job.tasks:
            task_rt = self._tasks[task.task_id]
            iid = task_rt.instance_id
            if iid is not None and iid in self._instances:
                inst = self._instances[iid]
                inst.assigned.discard(task.task_id)
                inst.invalidate()
                if inst.alive:
                    self._acct.task_unassigned(task, inst.instance.instance_type)
                if not inst.assigned and inst.alive:
                    inst.alive = False
                    self._acct.instance_down(inst.instance.instance_type)
                    self.cloud.terminate(iid, self.now_s)
                    del self._instances[iid]
            del self._tasks[task.task_id]
        self._outcomes.append(
            JobOutcome(
                job_id=job_id,
                workload=job_rt.job.workload,
                num_tasks=job_rt.job.num_tasks,
                arrival_s=job_rt.arrival_s,
                finish_s=self.now_s,
                duration_hours=job_rt.job.duration_hours,
                idle_hours=job_rt.idle_h,
            )
        )
        deadline_hours = job_rt.job.deadline_hours
        if deadline_hours is not None:
            deadline_s = job_rt.arrival_s + deadline_hours * 3600.0
            lateness_s = max(0.0, self.now_s - deadline_s)
            self._deadline_outcomes.append(
                DeadlineOutcome(
                    job_id=job_id,
                    deadline_s=deadline_s,
                    finish_s=self.now_s,
                    lateness_s=lateness_s,
                )
            )
            self._acct.job_deadline_resolved(lateness_s)
        del self._jobs[job_id]
        self._pending_obs.append(JobFinished(job_id=job_id, time_s=self.now_s))
        self._refresh_rates(affected)

    def _on_eviction_notice(self, instance_id: str, eviction_time_s: float) -> None:
        """The spot market warns that ``instance_id`` will be reclaimed.

        The notice becomes a typed observation for the next scheduling
        round (which this arms); if the instance is already gone the
        notice is stale and dropped.
        """
        rt = self._instances.get(instance_id)
        if rt is None or not rt.alive:
            return
        self._pending_obs.append(
            SpotEvictionNotice(
                instance_id=instance_id, eviction_time_s=eviction_time_s
            )
        )
        self._ensure_round_scheduled()

    def _on_instance_preemption(self, instance_id: str) -> None:
        """The spot market reclaims an instance: tasks return to the queue.

        Progress is preserved — the interruption notice covers the
        checkpoint — but the tasks wait for the next scheduling round and
        pay fresh launch delays wherever they land.
        """
        rt = self._instances.get(instance_id)
        if rt is None or not rt.alive:
            return  # already terminated; stale preemption draw
        affected = self._jobs_sharing_instance(instance_id)
        self._advance_all(affected)
        for task_id in sorted(rt.assigned):
            task_rt = self._tasks.get(task_id)
            if task_rt is None:
                continue
            self._acct.task_unassigned(task_rt.task, rt.instance.instance_type)
            task_rt.status = TaskStatus.QUEUED
            task_rt.instance_id = None
            task_rt.resume_version += 1
        rt.assigned.clear()
        rt.invalidate()
        rt.alive = False
        self._placement_epoch += 1
        self._acct.instance_down(rt.instance.instance_type)
        self.cloud.terminate(instance_id, self.now_s)
        del self._instances[instance_id]
        self._preemptions += 1
        self._refresh_rates(affected)
        self._ensure_round_scheduled()

    # ------------------------------------------------------------------
    # Fault injection (FailureConfig)
    # ------------------------------------------------------------------
    def _schedule_next_shock(self) -> None:
        """Arm the next correlated domain shock (Poisson process).

        Draws come from the dedicated shock stream in a fixed order
        (inter-arrival gap, then target domain), so the shock schedule
        is a pure function of the failure seed — independent of how many
        instances any scheduler launched.
        """
        fail = self.failures
        gap_s = float(
            self._shock_rng.exponential(
                3600.0 / fail.domain_shock_rate_per_hour
            )
        )
        domain = int(self._shock_rng.integers(fail.num_domains))
        self.queue.push(
            Event(
                self.now_s + gap_s,
                EventKind.INSTANCE_FAILURE,
                ("domain", domain),
            )
        )

    def _on_instance_failure(self, scope: str, target) -> None:
        """An injected failure fires: one instance or a whole domain.

        Unlike spot preemption there is no graceful checkpoint — every
        affected job rolls back to its last completed checkpoint and the
        failure surfaces as an :class:`~repro.core.protocol.InstanceFailed`
        observation at the next round (which this arms).
        """
        if scope == "domain":
            victims = sorted(
                iid
                for iid, rt in self._instances.items()
                if rt.alive and rt.failure_domain == target
            )
            for iid in victims:
                self._fail_instance(iid, kind="domain-shock")
            # The process is self-scheduling: each shock arms the next,
            # keeping the queue bounded without knowing the makespan.
            self._schedule_next_shock()
            if victims:
                self._ensure_round_scheduled()
            return
        rt = self._instances.get(target)
        if rt is None or not rt.alive:
            return  # stale crash draw: instance already gone
        self._fail_instance(target, kind="crash")
        self._ensure_round_scheduled()

    def _fail_instance(self, instance_id: str, kind: str) -> None:
        """Abruptly kill one instance: rollback, restarts, accounting."""
        rt = self._instances[instance_id]
        domain = rt.failure_domain
        retry = self.failures.retry
        affected = self._jobs_sharing_instance(instance_id)
        self._advance_all(affected)
        tasks_lost = 0
        for task_id in sorted(rt.assigned):
            task_rt = self._tasks.get(task_id)
            if task_rt is None:
                continue
            self._acct.task_unassigned(task_rt.task, rt.instance.instance_type)
            task_rt.status = TaskStatus.QUEUED
            task_rt.instance_id = None
            task_rt.resume_version += 1
            task_rt.failures += 1
            tasks_lost += 1
            self._acct.task_restarted()
            if retry.backoff_base_s > 0:
                delay = min(
                    retry.backoff_cap_s,
                    retry.backoff_base_s * (2.0 ** (task_rt.failures - 1)),
                )
                task_rt.retry_until_s = max(
                    task_rt.retry_until_s, self.now_s + delay
                )
        job_losses: list[tuple[str, float]] = []
        for jid in sorted(affected):
            job_rt = self._jobs.get(jid)
            if job_rt is None or job_rt.finished:
                continue
            lost = job_rt.work_done_h - job_rt.ckpt_work_h
            if lost > 0.0:
                # The un-checkpointed progress is gone; the task-level
                # resume_version bump above makes the loss observable as
                # real re-execution, not just bookkeeping.
                job_rt.work_done_h = job_rt.ckpt_work_h
                self._acct.job_work_lost(lost)
                job_losses.append((jid, lost))
            if job_rt.outage_start_s is None:
                job_rt.outage_start_s = self.now_s
        rt.assigned.clear()
        rt.invalidate()
        rt.alive = False
        self._placement_epoch += 1
        self._acct.instance_down(rt.instance.instance_type)
        self._acct.instance_failed()
        self.cloud.terminate(instance_id, self.now_s)
        del self._instances[instance_id]
        self._failure_outcomes.append(
            FailureOutcome(
                instance_index=rt.launch_index,
                time_s=self.now_s,
                failure_domain=domain,
                kind=kind,
                tasks_lost=tasks_lost,
                job_losses=tuple(job_losses),
            )
        )
        self._pending_obs.append(
            InstanceFailed(
                instance_id=instance_id,
                time_s=self.now_s,
                failure_domain=domain,
            )
        )
        self._refresh_rates(affected)

    def _on_slowdown_start(self, instance_id: str, factor: float) -> None:
        """A straggler fault begins: the instance runs at ``factor``."""
        rt = self._instances.get(instance_id)
        if rt is None or not rt.alive:
            return  # stale straggler draw
        affected = self._jobs_sharing_instance(instance_id)
        self._advance_all(affected)
        rt.slowdown = factor
        # Reported rates are placement-visible state: bump the epoch so
        # snapshot/report caches rebuild with the degraded throughput.
        self._placement_epoch += 1
        self.queue.push(
            Event(
                self.now_s + self.failures.straggler_duration_s,
                EventKind.SLOWDOWN_END,
                instance_id,
            )
        )
        self._pending_obs.append(
            StragglerReport(
                instance_id=instance_id, time_s=self.now_s, slowdown=factor
            )
        )
        self._refresh_rates(affected)
        self._ensure_round_scheduled()

    def _on_slowdown_end(self, instance_id: str) -> None:
        """The straggler recovers; a ``slowdown=1.0`` report announces it."""
        rt = self._instances.get(instance_id)
        if rt is None or not rt.alive or rt.slowdown == 1.0:
            return
        affected = self._jobs_sharing_instance(instance_id)
        self._advance_all(affected)
        rt.slowdown = 1.0
        self._placement_epoch += 1
        self._pending_obs.append(
            StragglerReport(
                instance_id=instance_id, time_s=self.now_s, slowdown=1.0
            )
        )
        self._refresh_rates(affected)
        self._ensure_round_scheduled()

    def _on_price_change(self, pool_index: int) -> None:
        """A pool's price segment boundary: refresh, re-rate, re-arm.

        Consumes no RNG (the walk's draws are a pure function of the
        segment index), so price events never perturb the spot/failure
        streams.  Live instances in the pool are re-rated in sorted-id
        order through the O(1) billing-record split; a boundary whose
        quantized price matches the current level is silent (no
        observation, no re-rate, no round).
        """
        rt = self._market_rt
        old, new = rt.refresh(pool_index, self.now_s)
        boundary = rt.next_boundary_after(pool_index, self.now_s)
        if boundary is not None:
            self.queue.push(Event(boundary, EventKind.PRICE_CHANGE, pool_index))
        if new == old:
            return
        self._price_changes += 1
        pool = rt.pool(pool_index)
        for iid in rt.members_of(pool_index):
            inst = self._instances[iid]
            itype = inst.instance.instance_type
            discount = self.cloud.spot_discount if inst.spot else 1.0
            self.cloud.ledger.change_rate(
                iid, self.now_s, itype.hourly_cost * discount * new
            )
        self._pending_obs.append(
            PriceChanged(
                pool=pool.name,
                time_s=self.now_s,
                multiplier=new,
                previous=old,
                families=pool.families,
            )
        )
        self._ensure_round_scheduled()

    def _on_credit_exhausted(self, instance_id: str) -> None:
        """A burstable instance runs out of CPU credits.

        Effective throughput drops to the credit model's baseline for
        the rest of the instance's life; schedulers learn of the
        degraded capacity through the existing ``StragglerReport``
        channel (same semantics: slow, not down), so drain policies
        like eva-failure's apply unchanged.
        """
        rt = self._instances.get(instance_id)
        if rt is None or not rt.alive or rt.credit_mult != 1.0:
            return  # stale draw: the instance died first, or already burnt
        affected = self._jobs_sharing_instance(instance_id)
        self._advance_all(affected)
        rt.credit_mult = self.market.credits.baseline_fraction
        self._placement_epoch += 1
        self._credit_exhaustions += 1
        self._pending_obs.append(
            StragglerReport(
                instance_id=instance_id,
                time_s=self.now_s,
                slowdown=rt.credit_mult,
            )
        )
        self._refresh_rates(affected)
        self._ensure_round_scheduled()

    def _on_instance_terminate(self, instance_id: str) -> None:
        when = self._terminate_holds.pop(instance_id, None)
        if when is None:
            return
        self.cloud.terminate(instance_id, self.now_s)
        self._instances.pop(instance_id, None)

    def _drain_terminations(self) -> None:
        """Flush checkpoint-hold terminations left in the queue at the end."""
        while self.queue:
            event = self.queue.pop()
            if event.kind == EventKind.INSTANCE_TERMINATE:
                self._account_until(event.time_s)
                self.now_s = max(self.now_s, event.time_s)
                self._on_instance_terminate(event.payload)
        for iid, rt in sorted(self._instances.items()):
            if rt.alive:
                rt.alive = False
                self._acct.instance_down(rt.instance.instance_type)
                self.cloud.terminate(iid, self.now_s)
        self._instances.clear()

    # ------------------------------------------------------------------
    # Rates and progress
    # ------------------------------------------------------------------
    def _running_neighbours(self, task_rt: _TaskRT) -> list[str]:
        iid = task_rt.instance_id
        if iid is None or iid not in self._instances:
            return []
        inst = self._instances[iid]
        cache = inst.running_cache
        if cache is None:
            tasks = self._tasks
            cache = tuple(
                sorted(
                    tasks[tid].task.workload
                    for tid in inst.assigned
                    if tasks[tid].status is TaskStatus.RUNNING
                )
            )
            inst.running_cache = cache
        neighbours = list(cache)
        if task_rt.status is TaskStatus.RUNNING:
            # Removing the first occurrence of the task's own workload from
            # the sorted multiset equals sorting the neighbour multiset.
            neighbours.remove(task_rt.task.workload)
        return neighbours

    def _job_rate(self, job_rt: _JobRT) -> float:
        rate = 1.0
        fail_enabled = self._fail_enabled
        credit_enabled = self._credit_enabled
        for task in job_rt.job.tasks:
            task_rt = self._tasks[task.task_id]
            if task_rt.status is not TaskStatus.RUNNING:
                return 0.0
            tput = self.interference.task_throughput_sorted(
                task.workload, tuple(self._running_neighbours(task_rt))
            )
            if fail_enabled:
                inst = self._instances.get(task_rt.instance_id)
                if inst is not None and inst.slowdown != 1.0:
                    tput *= inst.slowdown
            if credit_enabled:
                inst = self._instances.get(task_rt.instance_id)
                if inst is not None and inst.credit_mult != 1.0:
                    tput *= inst.credit_mult
            rate = min(rate, tput)
        if self._ckpt_rate_mult != 1.0:
            rate *= self._ckpt_rate_mult
        return rate

    def _jobs_sharing_instance(self, instance_id: str | None) -> set[str]:
        if instance_id is None or instance_id not in self._instances:
            return set()
        return {
            self._tasks[tid].task.job_id
            for tid in self._instances[instance_id].assigned
            if tid in self._tasks
        }

    def _advance_all(self, job_ids: Sequence[str] | set[str]) -> None:
        for jid in job_ids:
            rt = self._jobs.get(jid)
            if rt is not None and not rt.finished:
                rt.advance(self.now_s)

    def _refresh_rates(self, job_ids: Sequence[str] | set[str]) -> None:
        for jid in sorted(job_ids):
            rt = self._jobs.get(jid)
            if rt is None or rt.finished:
                continue
            new_rate = self._job_rate(rt)
            if abs(new_rate - rt.rate) < 1e-12 and rt.finish_version > 0:
                continue
            rt.rate = new_rate
            rt.finish_version += 1
            if new_rate > 0 and rt.outage_start_s is not None:
                # The job's first positive rate since a failure closes
                # its outage span (per-job MTTR accumulates from these).
                self._acct.job_repaired(self.now_s - rt.outage_start_s)
                self._repair_outcomes.append(
                    RepairOutcome(
                        job_id=jid,
                        failed_s=rt.outage_start_s,
                        recovered_s=self.now_s,
                    )
                )
                rt.outage_start_s = None
            if new_rate > 0:
                eta_s = self.now_s + (rt.remaining_h / new_rate) * 3600.0
                self.queue.push(
                    Event(
                        max(eta_s, self.now_s),
                        EventKind.JOB_FINISH,
                        (jid, rt.finish_version),
                    )
                )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _account_until(self, time_s: float) -> None:
        dt = time_s - self._accounting_time_s
        if dt <= 0:
            return
        if self.validate:
            # Cross-check the O(delta) totals against the naive re-scan on
            # every accounting step (tests run with validate=True).
            self._acct.verify(
                self._instances,
                self._tasks,
                self._deadline_outcomes,
                self._failure_outcomes,
                self._repair_outcomes,
            )
        self._alloc.accumulate_totals(dt, self._acct)
        self._accounting_time_s = time_s


def run_simulation(
    trace: Trace,
    scheduler: Scheduler,
    interference: InterferenceModel | None = None,
    delay_model: DelayModel | None = None,
    period_s: float = DEFAULT_PERIOD_S,
    validate: bool = False,
    spot: SpotConfig | None = None,
    deadline_warning_s: float | None = None,
    failures: FailureConfig | None = None,
    market: MarketConfig | None = None,
) -> SimulationResult:
    """Convenience wrapper: simulate ``trace`` under ``scheduler``."""
    sim = ClusterSimulator(
        trace=trace,
        scheduler=scheduler,
        interference=interference,
        delay_model=delay_model,
        period_s=period_s,
        validate=validate,
        spot=spot,
        deadline_warning_s=deadline_warning_s,
        failures=failures,
        market=market,
    )
    return sim.run()
