"""Stable content fingerprints for scenario-shaped plain data.

The :class:`~repro.sim.results.ResultStore` caches simulation outcomes
keyed by a *fingerprint* of the scenario that produced them, so the
fingerprint is a correctness-critical contract:

* **Stable across processes and interpreter restarts** — it is derived
  from a canonical JSON encoding of sorted, explicitly-typed fields,
  never from Python's randomized ``hash()``.  Two processes with
  different ``PYTHONHASHSEED`` values produce identical fingerprints
  for equal values (guarded by a subprocess regression test).
* **Injective over the fields that affect results** — any field change
  that could change a simulation's outcome changes the fingerprint.
  Purely cosmetic fields (display labels) are excluded by the caller.
* **Fail-closed** — values whose behaviour cannot be captured as plain
  data (live RNG state, arbitrary callables) raise
  :class:`FingerprintError` instead of silently fingerprinting to
  something unstable; callers treat such scenarios as uncacheable.

The canonical encoding, in brief: mappings become objects with keys
sorted by string value; sequences become arrays; dataclasses become
``{"__dataclass__": qualified name, "fields": {...}}`` objects over
their public (non-underscore) fields; floats are required to be finite
and are rendered with ``repr``-level precision via ``json.dumps``;
numpy scalars/arrays are converted to tagged lists.  The fingerprint is
the SHA-256 hex digest of the UTF-8 canonical JSON.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import fields, is_dataclass
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["FingerprintError", "canonical_json", "fingerprint"]


class FingerprintError(TypeError):
    """Raised for values that have no stable canonical encoding."""


def _canonical(value: Any, path: str) -> Any:
    """Convert ``value`` to a JSON-encodable canonical structure."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            # JSON NaN/Infinity encoding is implementation-defined; the
            # simulator never needs them as inputs, so refuse.
            raise FingerprintError(f"non-finite float at {path}: {value!r}")
        return value
    if isinstance(value, np.generic):
        return _canonical(value.item(), path)
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": str(value.dtype),
            "shape": list(value.shape),
            "data": _canonical(value.tolist(), path + ".data"),
        }
    if isinstance(value, np.random.Generator):
        raise FingerprintError(
            f"live RNG state at {path} has no stable fingerprint; "
            "describe stochastic inputs by their seed instead"
        )
    custom = getattr(type(value), "__fingerprint__", None)
    if custom is not None:
        # Types whose dataclass fields over- or under-describe their
        # behaviour (e.g. DelayModel's unused rng in deterministic mode)
        # canonicalize themselves; the type name tags the encoding.
        return {
            "__fingerprint__": f"{type(value).__module__}.{type(value).__qualname__}",
            "value": _canonical(custom(value), path),
        }
    if is_dataclass(value) and not isinstance(value, type):
        encoded: dict[str, Any] = {}
        for f in fields(value):
            if f.name.startswith("_"):
                continue  # private caches never affect results
            encoded[f.name] = _canonical(
                getattr(value, f.name), f"{path}.{f.name}"
            )
        return {
            "__dataclass__": f"{type(value).__module__}.{type(value).__qualname__}",
            "fields": encoded,
        }
    if isinstance(value, Mapping):
        items = [(str(k), k, v) for k, v in value.items()]
        items.sort(key=lambda kv: kv[0])
        if len({k for k, _, _ in items}) != len(items):
            raise FingerprintError(f"mapping at {path} has colliding string keys")
        return {
            "__mapping__": True,
            "items": [
                [_canonical(k, f"{path}[{s}]"), _canonical(v, f"{path}[{s}]")]
                for s, k, v in items
            ],
        }
    if isinstance(value, (set, frozenset)):
        return {
            "__set__": sorted(
                (_canonical(v, f"{path}{{}}") for v in value),
                key=lambda e: json.dumps(e, sort_keys=True),
            )
        }
    if isinstance(value, Sequence):
        return [_canonical(v, f"{path}[{i}]") for i, v in enumerate(value)]
    raise FingerprintError(
        f"cannot fingerprint {type(value).__module__}.{type(value).__qualname__} "
        f"at {path}; supported: plain data, dataclasses, numpy arrays"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON text of ``value`` (see module docstring).

    Equal values produce byte-identical text in every process; raises
    :class:`FingerprintError` for values with no stable encoding.
    """
    return json.dumps(
        _canonical(value, "$"),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def fingerprint(value: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
