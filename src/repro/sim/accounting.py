"""Incremental cluster accounting — O(delta) aggregate totals.

The simulator bills time-weighted allocation/capacity integrals before
every event (§6.1 "Avg. Resource Alloc.").  Re-deriving the aggregates by
scanning every instance and every assigned task makes each event cost
O(cluster size); :class:`ClusterAccounting` instead maintains the running
totals and updates them on the four state deltas the simulator performs —
instance launch/terminate and task assign/unassign — so per-event
accounting work is proportional to what changed.

Demands and capacities are small integer-valued floats (Table 7 / the EC2
catalog), so the incremental sums are exact: the totals are bit-for-bit
equal to a fresh re-scan, and ``SimulationResult`` stays byte-identical
with the pre-incremental engine.  :func:`naive_totals` retains the
re-scan as a reference implementation; ``validate=True`` simulations
cross-check against it on every accounting step, and the randomized
equivalence test in ``tests/test_sim_invariants.py`` compares whole-run
results between the two paths.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.cluster.instance import InstanceType
from repro.cluster.resources import RESOURCE_NAMES
from repro.cluster.task import Task

_REL_TOL = 1e-9
_ABS_TOL = 1e-9


class AccountingDriftError(RuntimeError):
    """Incremental totals diverged from the naive re-scan (a delta was missed)."""


class ClusterAccounting:
    """Running cluster aggregates, updated on launch/terminate/assign/unassign.

    Attributes:
        allocated: Summed task demand per resource over live instances.
        capacity: Summed instance-type capacity per resource over live
            instances.
        num_tasks: Number of tasks assigned to live instances.
        num_instances: Number of live instances.
        deadline_jobs: Number of finished deadline-bearing jobs.
        deadline_misses: How many of those finished past their deadline.
        deadline_lateness_s: Running sum of per-job lateness
            (``max(0, finish - deadline)``), accumulated in finish order
            — one O(1) update per job completion, never a re-scan.
        instance_failures: Injected instance kills (crashes + shocks).
        task_restarts: Tasks knocked back to the queue by failures.
        work_lost_h: Standalone-hours of progress rolled back to the
            last checkpoint, accumulated per affected job in the exact
            (event, sorted job id) order the failure records keep, so
            :func:`naive_failure_totals` reproduces it bit for bit.
        repairs: Closed job outages (failure until rate recovery).
        repair_time_s: Running sum of outage durations (MTTR numerator).
    """

    __slots__ = (
        "allocated",
        "capacity",
        "num_tasks",
        "num_instances",
        "deadline_jobs",
        "deadline_misses",
        "deadline_lateness_s",
        "instance_failures",
        "task_restarts",
        "work_lost_h",
        "repairs",
        "repair_time_s",
    )

    def __init__(self) -> None:
        self.allocated: dict[str, float] = {r: 0.0 for r in RESOURCE_NAMES}
        self.capacity: dict[str, float] = {r: 0.0 for r in RESOURCE_NAMES}
        self.num_tasks = 0
        self.num_instances = 0
        self.deadline_jobs = 0
        self.deadline_misses = 0
        self.deadline_lateness_s = 0.0
        self.instance_failures = 0
        self.task_restarts = 0
        self.work_lost_h = 0.0
        self.repairs = 0
        self.repair_time_s = 0.0

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------
    def instance_up(self, instance_type: InstanceType) -> None:
        cap = instance_type.capacity
        for r in RESOURCE_NAMES:
            self.capacity[r] += cap.get(r)
        self.num_instances += 1

    def instance_down(self, instance_type: InstanceType) -> None:
        cap = instance_type.capacity
        for r in RESOURCE_NAMES:
            self.capacity[r] -= cap.get(r)
        self.num_instances -= 1

    def task_assigned(self, task: Task, instance_type: InstanceType) -> None:
        demand = task.demand_for(instance_type.family)
        for r in RESOURCE_NAMES:
            self.allocated[r] += demand.get(r)
        self.num_tasks += 1

    def task_unassigned(self, task: Task, instance_type: InstanceType) -> None:
        demand = task.demand_for(instance_type.family)
        for r in RESOURCE_NAMES:
            self.allocated[r] -= demand.get(r)
        self.num_tasks -= 1

    def job_deadline_resolved(self, lateness_s: float) -> None:
        """A deadline-bearing job finished with the given lateness.

        ``lateness_s`` must already be clamped to ``>= 0``; zero means
        the deadline was met.  Called once per deadline-bearing job, in
        finish order, so the lateness sum is deterministic.
        """
        if lateness_s < 0:
            raise ValueError(f"lateness_s must be >= 0, got {lateness_s}")
        self.deadline_jobs += 1
        if lateness_s > 0:
            self.deadline_misses += 1
            self.deadline_lateness_s += lateness_s

    def instance_failed(self) -> None:
        """One instance was killed by fault injection."""
        self.instance_failures += 1

    def task_restarted(self) -> None:
        """One task lost its instance to a failure and will retry."""
        self.task_restarts += 1

    def job_work_lost(self, lost_h: float) -> None:
        """A job rolled back ``lost_h`` standalone-hours to its checkpoint.

        Called once per (failure event, affected job) in sorted job-id
        order — the order :class:`~repro.sim.metrics.FailureOutcome`
        records keep — so the running sum is deterministic and
        :func:`naive_failure_totals` matches bit for bit.
        """
        if lost_h < 0:
            raise ValueError(f"lost_h must be >= 0, got {lost_h}")
        self.work_lost_h += lost_h

    def job_repaired(self, outage_s: float) -> None:
        """A failed job's rate recovered after ``outage_s`` seconds."""
        if outage_s < 0:
            raise ValueError(f"outage_s must be >= 0, got {outage_s}")
        self.repairs += 1
        self.repair_time_s += outage_s

    # ------------------------------------------------------------------
    # Reference implementation + cross-check
    # ------------------------------------------------------------------
    def verify(
        self,
        instances: Mapping[str, object],
        tasks: Mapping[str, object],
        deadline_outcomes: Sequence[object] | None = None,
        failure_outcomes: Sequence[object] | None = None,
        repair_outcomes: Sequence[object] | None = None,
    ) -> None:
        """Assert the incremental totals match a naive re-scan.

        Called on every accounting step when the simulator runs with
        ``validate=True``; raises :class:`AccountingDriftError` when any
        total drifted (i.e. a state mutation bypassed the delta hooks).
        ``deadline_outcomes`` (the simulator's finish-order SLO records)
        additionally cross-checks the deadline counters against
        :func:`naive_deadline_totals`; ``failure_outcomes`` /
        ``repair_outcomes`` (the dispatch-order reliability records) do
        the same for the reliability counters via
        :func:`naive_failure_totals`.
        """
        allocated, capacity, num_tasks, num_instances = naive_totals(instances, tasks)
        if num_tasks != self.num_tasks or num_instances != self.num_instances:
            raise AccountingDriftError(
                f"count drift: incremental ({self.num_tasks} tasks, "
                f"{self.num_instances} instances) vs naive ({num_tasks}, {num_instances})"
            )
        for r in RESOURCE_NAMES:
            for label, inc, ref in (
                ("allocated", self.allocated[r], allocated[r]),
                ("capacity", self.capacity[r], capacity[r]),
            ):
                if not math.isclose(inc, ref, rel_tol=_REL_TOL, abs_tol=_ABS_TOL):
                    raise AccountingDriftError(
                        f"{label}[{r}] drift: incremental {inc!r} vs naive {ref!r}"
                    )
        if deadline_outcomes is not None:
            jobs, misses, lateness = naive_deadline_totals(deadline_outcomes)
            if jobs != self.deadline_jobs or misses != self.deadline_misses:
                raise AccountingDriftError(
                    f"deadline count drift: incremental ({self.deadline_jobs} "
                    f"jobs, {self.deadline_misses} misses) vs naive "
                    f"({jobs}, {misses})"
                )
            # Same additions in the same (finish) order: bit-for-bit.
            if lateness != self.deadline_lateness_s:
                raise AccountingDriftError(
                    f"deadline lateness drift: incremental "
                    f"{self.deadline_lateness_s!r} vs naive {lateness!r}"
                )
        if failure_outcomes is not None:
            failures, restarts, lost, repairs, repair_s = naive_failure_totals(
                failure_outcomes, repair_outcomes or ()
            )
            if (
                failures != self.instance_failures
                or restarts != self.task_restarts
                or repairs != self.repairs
            ):
                raise AccountingDriftError(
                    f"reliability count drift: incremental "
                    f"({self.instance_failures} failures, "
                    f"{self.task_restarts} restarts, {self.repairs} repairs) "
                    f"vs naive ({failures}, {restarts}, {repairs})"
                )
            # Same additions in the same (event, job) order: bit-for-bit.
            if lost != self.work_lost_h:
                raise AccountingDriftError(
                    f"work-lost drift: incremental {self.work_lost_h!r} "
                    f"vs naive {lost!r}"
                )
            if repair_s != self.repair_time_s:
                raise AccountingDriftError(
                    f"repair-time drift: incremental {self.repair_time_s!r} "
                    f"vs naive {repair_s!r}"
                )


def naive_totals(
    instances: Mapping[str, object], tasks: Mapping[str, object]
) -> tuple[dict[str, float], dict[str, float], int, int]:
    """O(cluster size) re-scan of the aggregate totals.

    ``instances`` maps instance id → runtime record exposing ``alive``,
    ``instance`` and ``assigned``; ``tasks`` maps task id → runtime record
    exposing ``task`` (the simulator's ``_InstanceRT`` / ``_TaskRT``).
    This is the pre-incremental accounting loop, retained as the reference
    the incremental path is checked against.
    """
    allocated = {r: 0.0 for r in RESOURCE_NAMES}
    capacity = {r: 0.0 for r in RESOURCE_NAMES}
    num_tasks = 0
    num_instances = 0
    for rt in instances.values():
        if not rt.alive:
            continue
        num_instances += 1
        itype = rt.instance.instance_type
        for r in RESOURCE_NAMES:
            capacity[r] += itype.capacity.get(r)
        for tid in rt.assigned:
            task = tasks[tid].task
            demand = task.demand_for(itype.family)
            for r in RESOURCE_NAMES:
                allocated[r] += demand.get(r)
            num_tasks += 1
    return allocated, capacity, num_tasks, num_instances


def naive_deadline_totals(
    deadline_outcomes: Sequence[object],
) -> tuple[int, int, float]:
    """Re-derive ``(jobs, misses, total lateness)`` from the SLO records.

    ``deadline_outcomes`` is the simulator's finish-order list of
    :class:`~repro.sim.metrics.DeadlineOutcome` records.  Iterating it in
    that order performs the exact addition sequence of the incremental
    path, so the lateness total compares bit-for-bit.
    """
    misses = 0
    lateness = 0.0
    for outcome in deadline_outcomes:
        if outcome.lateness_s > 0:
            misses += 1
            lateness += outcome.lateness_s
    return len(deadline_outcomes), misses, lateness


def naive_failure_totals(
    failure_outcomes: Sequence[object],
    repair_outcomes: Sequence[object] = (),
) -> tuple[int, int, float, int, float]:
    """Re-derive the reliability totals from the per-event records.

    Returns ``(instance_failures, task_restarts, work_lost_h, repairs,
    repair_time_s)``.  ``failure_outcomes`` are the simulator's
    dispatch-order :class:`~repro.sim.metrics.FailureOutcome` records;
    iterating each event's per-job losses in their stored (sorted job
    id) order performs the exact addition sequence of the incremental
    path, so the float totals compare bit for bit — the same contract as
    :func:`naive_deadline_totals`.
    """
    restarts = 0
    lost = 0.0
    for outcome in failure_outcomes:
        restarts += outcome.tasks_lost
        for _, job_lost in outcome.job_losses:
            lost += job_lost
    repair_s = 0.0
    for repair in repair_outcomes:
        repair_s += repair.recovered_s - repair.failed_s
    return (
        len(failure_outcomes),
        restarts,
        lost,
        len(repair_outcomes),
        repair_s,
    )
