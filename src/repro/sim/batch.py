"""Parallel scenario/batch execution (the sweep layer).

The evaluation is a grid of (scheduler × workload × seed) simulations.
This module turns one cell of that grid into a picklable
:class:`Scenario` — the trace (inline or as a named :class:`TraceSpec`),
a scheduler *registry name* (see :func:`repro.core.make_scheduler`), the
catalog, and the interference/delay/spot configuration — and fans a list
of scenarios out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Worker count comes from ``EVA_BENCH_WORKERS`` (default 1).  With one
worker everything runs serially in-process, so coverage, debuggers and
profilers keep working; results are identical either way because every
scenario is executed against a deep copy of its configuration (exactly
what pickling into a worker process would produce).

Results come back as :class:`ScenarioOutcome` objects in **input order**
regardless of completion order, each carrying the scenario, its
:class:`~repro.sim.metrics.SimulationResult`, and the wall-clock time the
simulation took inside its worker.

Two higher layers build on scenarios:

* ``run_batch(..., store=...)`` consults a persistent
  :class:`~repro.sim.results.ResultStore` first and only simulates the
  misses — interrupted sweeps resume, unchanged scenarios replay from
  cache byte-identically.
* :func:`run_trials` runs each scenario across N seeds (see
  :func:`reseed`) and aggregates every metric to mean ± std as a
  first-class :class:`TrialAggregate`.
"""

from __future__ import annotations

import copy
import os
import statistics
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.results import ResultStore

from repro.cloud.delays import DelayModel
from repro.cloud.market import MarketConfig
from repro.cluster.instance import InstanceType
from repro.interference.model import InterferenceModel
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import (
    DEFAULT_PERIOD_S,
    FailureConfig,
    SpotConfig,
    run_simulation,
)
from repro.workloads.trace import Trace

_T = TypeVar("_T")
_R = TypeVar("_R")

# ---------------------------------------------------------------------------
# Worker-count configuration
# ---------------------------------------------------------------------------


def bench_workers() -> int:
    """The global fan-out width from ``EVA_BENCH_WORKERS`` (default 1)."""
    raw = os.environ.get("EVA_BENCH_WORKERS", "1")
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"EVA_BENCH_WORKERS must be an integer, got {raw!r}"
        ) from exc
    if value < 1:
        raise ValueError(f"EVA_BENCH_WORKERS must be >= 1, got {value}")
    return value


def _resolve_workers(workers: int | None, num_items: int) -> int:
    if workers is None:
        workers = bench_workers()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return min(workers, max(1, num_items))


# ---------------------------------------------------------------------------
# Generic ordered process fan-out
# ---------------------------------------------------------------------------


def _item_label(item: Any) -> str:
    """Best-effort display label for a work item (scenarios have one)."""
    label = getattr(item, "label", None)
    if isinstance(label, str) and label:
        return label
    text = repr(item)
    return text if len(text) <= 80 else text[:77] + "..."


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: int | None = None,
    label: Callable[[_T], str] | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, fanning out over processes.

    ``fn`` and every item must be picklable (module-level function, plain
    data).  Results are returned in input order regardless of completion
    order.  ``workers=None`` reads ``EVA_BENCH_WORKERS``; ``workers=1``
    (the default environment) runs a plain serial loop in-process.
    ``label`` renders an item for diagnostics (default: the item's
    ``.label`` attribute, else a truncated ``repr``).

    **Worker-crash resilience**: if a worker process dies (OOM kill,
    segfault, ``os._exit``), the executor marks the whole pool broken
    and every unfinished future raises
    :class:`~concurrent.futures.process.BrokenProcessPool`.  Instead of
    losing the sweep, the affected items are retried serially in this
    process with a warning that **names the affected items** — completed
    results are kept.  ``fn``'s own exceptions still propagate unchanged
    (only pool breakage is retried), annotated with the originating
    item's label so a poisoned cell in a thousand-scenario sweep is
    identifiable from the traceback alone.
    """
    items = list(items)
    workers = _resolve_workers(workers, len(items))
    describe = label if label is not None else _item_label
    if workers == 1:
        return [_apply_labelled(fn, item, describe) for item in items]
    results: list[_R | None] = []
    broken: list[int] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        for index, future in enumerate(futures):
            try:
                results.append(future.result())
            except BrokenProcessPool:
                results.append(None)
                broken.append(index)
            except Exception as exc:
                exc.add_note(
                    f"parallel_map item {index} ({describe(items[index])}) "
                    "raised in its worker process"
                )
                raise
    if broken:
        poisoned = ", ".join(describe(items[index]) for index in broken)
        warnings.warn(
            f"worker process died mid-batch; retrying {len(broken)} "
            f"item(s) serially in the parent process: {poisoned}",
            RuntimeWarning,
            stacklevel=2,
        )
        for index in broken:
            results[index] = _apply_labelled(fn, items[index], describe)
    return results  # type: ignore[return-value]  # every slot is filled


def _apply_labelled(
    fn: Callable[[_T], _R], item: _T, describe: Callable[[_T], str]
) -> _R:
    """Run ``fn(item)``, annotating any exception with the item's label."""
    try:
        return fn(item)
    except Exception as exc:
        exc.add_note(f"while executing item {describe(item)}")
        raise


# ---------------------------------------------------------------------------
# Trace specs
# ---------------------------------------------------------------------------

TraceBuilder = Callable[..., Trace]

_TRACE_BUILDERS: dict[str, TraceBuilder] = {}


def register_trace_builder(name: str, builder: TraceBuilder) -> None:
    """Register a named trace builder for :class:`TraceSpec` resolution.

    Worker processes resolve specs against *their own* registry, so
    custom builders must be registered at import time of a module the
    workers also import (package code, a conftest) — not inline in a
    script — or parallel runs under the ``spawn`` start method (macOS,
    Windows) will not find them.  The same applies to
    :func:`repro.core.register_scheduler`.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("trace builder name must be non-empty")
    _TRACE_BUILDERS[key] = builder


def trace_builder_names() -> tuple[str, ...]:
    return tuple(sorted(_TRACE_BUILDERS))


def _register_builtin_builders() -> None:
    from repro.workloads.alibaba import (
        alibaba_gavel_trace,
        alibaba_multi_gpu_trace,
        alibaba_multi_task_trace,
        alibaba_replay_trace,
        gavel_replay_trace,
        synthesize_alibaba_trace,
    )
    from repro.workloads.synthetic import (
        multitask_microbench_trace,
        small_physical_trace,
        synthetic_trace,
    )

    register_trace_builder("alibaba", synthesize_alibaba_trace)
    register_trace_builder("alibaba-gavel", alibaba_gavel_trace)
    register_trace_builder("alibaba-replay", alibaba_replay_trace)
    register_trace_builder("gavel-replay", gavel_replay_trace)
    register_trace_builder("alibaba-multi-gpu", alibaba_multi_gpu_trace)
    register_trace_builder("alibaba-multi-task", alibaba_multi_task_trace)
    register_trace_builder("synthetic", synthetic_trace)
    register_trace_builder("multitask-microbench", multitask_microbench_trace)
    register_trace_builder("small-physical", small_physical_trace)


_register_builtin_builders()


@dataclass(frozen=True)
class TraceSpec:
    """A trace described by builder name + kwargs instead of inline jobs.

    Keeps scenarios small on the wire: the worker process rebuilds the
    trace from the (deterministic, seeded) builder.  ``kwargs`` is stored
    as a sorted tuple of pairs so the spec stays hashable.

    **Fingerprint stability contract** (:meth:`fingerprint`): the digest
    is derived from a canonical JSON encoding of ``builder`` and the
    sorted ``kwargs`` — never from Python's randomized ``hash()`` — so
    it is identical across processes, interpreter restarts, and
    ``PYTHONHASHSEED`` values.  It keys the persistent
    :class:`~repro.sim.results.ResultStore`, so every field that can
    change the built trace must flow into it (they all do: the spec *is*
    builder + kwargs).
    """

    builder: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    def fingerprint(self) -> str:
        """Stable content digest of this spec (see class docstring)."""
        from repro.sim.fingerprint import fingerprint

        return fingerprint(self)

    @classmethod
    def make(cls, builder: str, **kwargs: Any) -> "TraceSpec":
        return cls(builder=builder, kwargs=tuple(sorted(kwargs.items())))

    def build(self, default_seed: int | None = None) -> Trace:
        key = self.builder.strip().lower()
        try:
            builder = _TRACE_BUILDERS[key]
        except KeyError:
            raise KeyError(
                f"unknown trace builder {self.builder!r}; "
                f"registered: {', '.join(trace_builder_names())}"
            ) from None
        kwargs = dict(self.kwargs)
        if default_seed is not None:
            kwargs.setdefault("seed", default_seed)
        return builder(**kwargs)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One (trace, scheduler, environment) cell of an evaluation grid.

    Everything is plain data or a registry name, so a scenario pickles
    cleanly into a worker process.  ``seed`` is handed to the trace
    builder when ``trace`` is a :class:`TraceSpec` without an explicit
    seed; seed the spot market explicitly via ``SpotConfig(seed=...)``.

    **Fingerprint stability contract** (:meth:`fingerprint`): the digest
    is a canonical-JSON content hash (no ``hash()``, no id()s), byte-
    identical across processes and ``PYTHONHASHSEED`` values, covering
    every field that affects the :class:`~repro.sim.metrics.SimulationResult`
    — scheduler name, trace (spec or inline jobs), catalog, interference
    and delay models, spot config, period, validate, and seed.  Only the
    display ``name`` is excluded (cosmetic).  It is the cache key of the
    persistent :class:`~repro.sim.results.ResultStore`; scenarios whose
    models carry live RNG state (e.g. a stochastic ``DelayModel``) raise
    :class:`~repro.sim.fingerprint.FingerprintError` and are treated as
    uncacheable rather than fingerprinted unstably.

    Attributes:
        scheduler: Registry name (see :func:`repro.core.scheduler_names`).
        trace: Inline :class:`Trace` or a :class:`TraceSpec`.
        name: Optional display label (defaults to ``scheduler@trace``).
        catalog: Instance catalog; ``None`` means the §6.1 EC2 catalog.
        interference: Ground-truth co-location model (given to the
            simulator, and to schedulers that take a profile, i.e. Owl).
        delay_model: Reconfiguration delay model (Table 1 means when None).
        spot: Optional spot-market configuration.
        period_s: Scheduling period.
        validate: Validate every target configuration (slower).
        seed: Scenario seed (see above).
        deadline_warning_s: Horizon of the simulator's
            :class:`~repro.core.protocol.DeadlineApproaching` warnings
            (``None`` = the classic two-period default; see
            :class:`~repro.sim.simulator.ClusterSimulator`).  Result-
            affecting for deadline-aware schedulers, hence part of the
            fingerprint like every other field here.
        failures: Optional fault-injection configuration
            (:class:`~repro.sim.simulator.FailureConfig`).  ``None``
            keeps the fault-free engine path byte-identical; any value
            flows into the fingerprint (it is a frozen dataclass of
            plain scalars, so canonical-JSON coverage is automatic).
        market: Optional spot-market economics
            (:class:`~repro.cloud.market.MarketConfig`): per-pool price
            traces, finite capacity, burstable credits.  ``None`` keeps
            the market-free engine path byte-identical; fingerprint
            coverage is automatic (frozen dataclasses of plain
            scalars/tuples all the way down).
    """

    scheduler: str
    trace: Trace | TraceSpec
    name: str | None = None
    catalog: tuple[InstanceType, ...] | None = None
    interference: InterferenceModel | None = None
    delay_model: DelayModel | None = None
    spot: SpotConfig | None = None
    period_s: float = DEFAULT_PERIOD_S
    validate: bool = False
    seed: int = 0
    deadline_warning_s: float | None = None
    failures: FailureConfig | None = None
    market: MarketConfig | None = None

    def __post_init__(self) -> None:
        if self.catalog is not None and not isinstance(self.catalog, tuple):
            object.__setattr__(self, "catalog", tuple(self.catalog))

    @property
    def label(self) -> str:
        if self.name is not None:
            return self.name
        trace_name = (
            self.trace.name
            if isinstance(self.trace, Trace)
            else f"{self.trace.builder}-spec"
        )
        return f"{self.scheduler}@{trace_name}"

    def fingerprint(self) -> str:
        """Stable content digest of this scenario (see class docstring)."""
        from repro.sim.fingerprint import fingerprint

        return fingerprint(replace(self, name=None))


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's result plus its in-worker wall-clock time."""

    scenario: Scenario
    result: SimulationResult
    elapsed_s: float


def _execute_scenario(scenario: Scenario) -> ScenarioOutcome:
    """Run one scenario; module-level so it pickles into worker processes.

    The mutable environment models are deep-copied first so serial
    execution sees exactly the fresh-state semantics of a pickled copy
    in a worker process (a shared stochastic ``DelayModel``'s RNG, or an
    ``InterferenceModel`` cache, would otherwise leak state between
    scenarios and break the serial-vs-parallel determinism guarantee).
    The trace and catalog are immutable inputs and stay shared — copying
    a multi-thousand-job trace per scenario would dominate serial runs.
    """
    original = scenario
    interference = copy.deepcopy(scenario.interference)
    delay_model = copy.deepcopy(scenario.delay_model)
    from repro.cloud.catalog import ec2_catalog
    from repro.core import make_scheduler

    catalog: Sequence[InstanceType] = (
        list(scenario.catalog) if scenario.catalog is not None else ec2_catalog()
    )
    trace = (
        scenario.trace
        if isinstance(scenario.trace, Trace)
        else scenario.trace.build(default_seed=scenario.seed)
    )
    scheduler = make_scheduler(
        scenario.scheduler,
        catalog,
        interference=interference,
        delay_model=delay_model,
    )
    start = time.perf_counter()
    result = run_simulation(
        trace,
        scheduler,
        interference=interference,
        delay_model=delay_model,
        period_s=scenario.period_s,
        validate=scenario.validate,
        spot=scenario.spot,
        deadline_warning_s=scenario.deadline_warning_s,
        failures=scenario.failures,
        market=scenario.market,
    )
    return ScenarioOutcome(
        scenario=original, result=result, elapsed_s=time.perf_counter() - start
    )


def run_batch(
    scenarios: Iterable[Scenario],
    workers: int | None = None,
    store: "ResultStore | None" = None,
    dispatcher: Any | None = None,
) -> list[ScenarioOutcome]:
    """Run every scenario, fanning out over ``workers`` processes.

    ``workers=None`` reads ``EVA_BENCH_WORKERS`` (default 1 → serial
    in-process execution).  Outcomes are returned in input order, and the
    per-scenario metrics are identical for any worker count: each
    simulation is seeded and self-contained, and serial execution runs
    against a deep copy of the scenario just as a worker would.

    With a ``store`` (a :class:`~repro.sim.results.ResultStore`), cached
    outcomes are served without re-simulating and only the misses run;
    fresh outcomes are written back, so an interrupted sweep resumes
    where it stopped.  Results are byte-identical with or without a
    store (cache entries are pickled originals, keyed by a content
    fingerprint plus a code token).

    With a ``dispatcher`` (a
    :class:`~repro.sim.fabric.dispatch.FabricDispatcher`), the batch
    runs on a multi-host fleet instead of local processes: misses are
    submitted to the fabric's scenario queue, pull-stealing workers
    execute them through this very module's executor, and results come
    back through the shared content-addressed backend — byte-identical
    to a serial run by construction, including under worker loss
    (leases expire and scenarios are re-stolen).  ``workers`` is then
    the *fleet's* concern and is ignored locally.
    """
    scenarios = list(scenarios)
    if dispatcher is not None:
        return dispatcher.run_batch(scenarios, store=store)
    if store is None:
        return parallel_map(
            _execute_scenario, scenarios, workers=workers
        )

    outcomes: list[ScenarioOutcome | None] = []
    missing: list[tuple[int, Scenario]] = []
    for index, scenario in enumerate(scenarios):
        cached = store.get(scenario)
        outcomes.append(cached)
        if cached is None:
            missing.append((index, scenario))
    fresh = parallel_map(
        _execute_scenario, [scenario for _, scenario in missing], workers=workers
    )
    for (index, scenario), outcome in zip(missing, fresh):
        store.put(scenario, outcome)
        outcomes[index] = outcome
    return outcomes  # type: ignore[return-value]  # every slot is filled


def run_scenario(scenario: Scenario) -> ScenarioOutcome:
    """Run a single scenario in-process (convenience wrapper)."""
    return _execute_scenario(scenario)


_P = TypeVar("_P")


def run_grid(
    points: Iterable[_P],
    schedulers: Mapping[str, str],
    make_scenario: Callable[[_P, str], Scenario],
    workers: int | None = None,
) -> dict[_P, dict[str, SimulationResult]]:
    """Run a (sweep-point × scheduler) grid and key results structurally.

    The sweep experiments (fig04–fig08, table06) all share this shape:
    for every sweep ``point`` and every ``{display name: registry name}``
    scheduler, build a scenario, run the whole grid as one batch, and
    read results back per point.  This helper owns the pairing — results
    are keyed by ``(point, display name)`` from the same loop that built
    the scenarios, so reordering or filtering either axis can never
    silently mispair a result with its cell.

    ``make_scenario(point, registry_name)`` builds one cell's scenario;
    when it leaves ``name`` unset, the cell is labelled
    ``"{display}@{point}"``.
    """
    points = list(points)
    cells: list[tuple[_P, str, Scenario]] = []
    for point in points:
        for display, registry_name in schedulers.items():
            scenario = make_scenario(point, registry_name)
            if scenario.name is None:
                scenario = replace(scenario, name=f"{display}@{point}")
            cells.append((point, display, scenario))
    outcomes = run_batch([cell[2] for cell in cells], workers=workers)
    grid: dict[_P, dict[str, SimulationResult]] = {point: {} for point in points}
    for (point, display, _), outcome in zip(cells, outcomes):
        grid[point][display] = outcome.result
    return grid


# ---------------------------------------------------------------------------
# Multi-seed trials (mean ± std across seeds as a first-class result)
# ---------------------------------------------------------------------------


def reseed(scenario: Scenario, seed: int) -> Scenario:
    """Derive the ``seed``-th trial of ``scenario``.

    Overrides every seed the scenario carries: ``Scenario.seed``, an
    explicit ``seed`` kwarg inside a :class:`TraceSpec` (so specs that
    pinned their seed still vary across trials), the spot market's
    ``SpotConfig.seed``, the fault injector's ``FailureConfig.seed``,
    and the spot market's ``MarketConfig.seed`` (the per-pool price
    streams derive from it).  Inline :class:`Trace` objects are already
    built and cannot be re-seeded — express multi-seed sweeps as
    :class:`TraceSpec` scenarios so each trial regenerates its trace.
    """
    trace = scenario.trace
    if isinstance(trace, TraceSpec) and any(k == "seed" for k, _ in trace.kwargs):
        trace = replace(
            trace,
            kwargs=tuple(
                (k, seed if k == "seed" else v) for k, v in trace.kwargs
            ),
        )
    spot = scenario.spot
    if spot is not None:
        spot = replace(spot, seed=seed)
    failures = scenario.failures
    if failures is not None:
        failures = replace(failures, seed=seed)
    market = scenario.market
    if market is not None:
        market = replace(market, seed=seed)
    return replace(
        scenario,
        seed=seed,
        trace=trace,
        spot=spot,
        failures=failures,
        market=market,
    )


@dataclass(frozen=True)
class MetricStats:
    """Mean ± std (population, ``ddof=0``) of one metric across seeds."""

    mean: float
    std: float
    values: tuple[float, ...]

    @classmethod
    def of(cls, values: Iterable[float]) -> "MetricStats":
        vals = tuple(float(v) for v in values)
        if not vals:
            raise ValueError("MetricStats needs at least one value")
        mean = statistics.fmean(vals)
        std = (
            0.0
            if len(vals) == 1
            else statistics.pstdev(vals, mu=mean)
        )
        return cls(mean=mean, std=std, values=vals)

    def __format__(self, spec: str) -> str:
        spec = spec or ".3f"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


@dataclass(frozen=True)
class TrialAggregate:
    """One scenario's outcomes across every trial seed.

    ``outcomes`` are ordered like ``seeds``; :meth:`stat` reduces any
    per-result metric to :class:`MetricStats`, and the common paper
    metrics are exposed as properties.
    """

    scenario: Scenario
    seeds: tuple[int, ...]
    outcomes: tuple[ScenarioOutcome, ...]

    @property
    def label(self) -> str:
        return self.scenario.label

    @property
    def results(self) -> tuple[SimulationResult, ...]:
        return tuple(outcome.result for outcome in self.outcomes)

    def stat(self, metric: Callable[[SimulationResult], float]) -> MetricStats:
        return MetricStats.of(metric(result) for result in self.results)

    @property
    def total_cost(self) -> MetricStats:
        return self.stat(lambda r: r.total_cost)

    @property
    def mean_jct_hours(self) -> MetricStats:
        return self.stat(lambda r: r.mean_jct_hours())

    @property
    def mean_normalized_tput(self) -> MetricStats:
        return self.stat(lambda r: r.mean_normalized_tput())

    @property
    def instances_launched(self) -> MetricStats:
        return self.stat(lambda r: r.instances_launched)

    def normalized_cost(self, baseline: "TrialAggregate") -> MetricStats:
        """Per-seed cost ratio against ``baseline``, aggregated.

        Ratios are taken seed-by-seed (trial *i* against baseline trial
        *i*), matching how the paper normalizes repeated trials.
        """
        if baseline.seeds != self.seeds:
            raise ValueError(
                f"baseline seeds {baseline.seeds} != trial seeds {self.seeds}"
            )
        return MetricStats.of(
            mine.total_cost / theirs.total_cost
            for mine, theirs in zip(self.results, baseline.results)
        )


@dataclass(frozen=True)
class TrialSet:
    """Every scenario's :class:`TrialAggregate` for one multi-seed run.

    Aggregates are ordered like the input scenarios; ``seeds`` is shared
    by every aggregate.
    """

    seeds: tuple[int, ...]
    aggregates: tuple[TrialAggregate, ...]

    def __iter__(self):
        return iter(self.aggregates)

    def __len__(self) -> int:
        return len(self.aggregates)

    def by_label(self) -> dict[str, TrialAggregate]:
        return {aggregate.label: aggregate for aggregate in self.aggregates}


def run_trials(
    scenarios: Iterable[Scenario],
    seeds: Sequence[int],
    workers: int | None = None,
    store: "ResultStore | None" = None,
    dispatcher: Any | None = None,
) -> TrialSet:
    """Run every scenario across every seed and aggregate per scenario.

    The full (scenario × seed) product runs as **one** batch, so it fans
    out over ``workers`` processes (or a fabric fleet via
    ``dispatcher``) and deduplicates against ``store`` like any other
    sweep.  Trials are derived with :func:`reseed`.
    """
    scenarios = list(scenarios)
    seeds = tuple(int(seed) for seed in seeds)
    if not seeds:
        raise ValueError("run_trials needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"trial seeds must be distinct, got {seeds}")
    cells = [
        reseed(scenario, seed) for scenario in scenarios for seed in seeds
    ]
    outcomes = run_batch(cells, workers=workers, store=store, dispatcher=dispatcher)
    aggregates = []
    for index, scenario in enumerate(scenarios):
        per_seed = outcomes[index * len(seeds) : (index + 1) * len(seeds)]
        aggregates.append(
            TrialAggregate(
                scenario=scenario, seeds=seeds, outcomes=tuple(per_seed)
            )
        )
    return TrialSet(seeds=seeds, aggregates=tuple(aggregates))
