"""Pluggable storage backends under :class:`~repro.sim.results.ResultStore`.

A backend stores opaque payload bytes under content-addressed string
keys of the form ``"<code-token16>/<scenario-fingerprint>"``.  The
semantics every backend must provide (and that
``tests/test_results_store.py`` checks against all of them):

* **Atomic put-if-absent** — :meth:`StoreBackend.put_if_absent` writes
  the payload only when the key is vacant and reports whether *this*
  call stored it.  Racing writers of a content-addressed key hold
  byte-identical payloads (results are deterministic functions of the
  key), so first-write-wins is safe; the verdict lets callers count
  stores without double-publishing.
* **Readers never see partial entries** — writes are atomic
  (temp-file + rename on the filesystem, single mapping assignment
  under a lock in memory, one request on the wire).
* **Corruption tolerance** — :meth:`StoreBackend.get` returns whatever
  bytes are stored (or ``None``); *interpreting* them is the store's
  job, and an undecodable payload is treated as a miss upstream, never
  an error.  :meth:`StoreBackend.replace` exists so the store can
  overwrite an entry it has decided is corrupt.

Payload bytes, not pickled objects, cross this seam: backends stay
transport-agnostic (filesystem, in-memory dict, HTTP) and the
byte-identity contract of cached results is preserved verbatim.
"""

from __future__ import annotations

import os
import tempfile
import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "KVBackend",
    "LocalFSBackend",
    "StoreBackend",
    "TieredStore",
]


def _split_key(key: str) -> tuple[str, str]:
    """Split ``"<token>/<fingerprint>"`` into its two path-safe parts."""
    token, sep, name = key.partition("/")
    if not sep or not token or not name or "/" in name:
        raise ValueError(
            f"backend keys must look like '<token>/<fingerprint>', got {key!r}"
        )
    return token, name


class StoreBackend(ABC):
    """Abstract content-addressed byte store (see module docstring)."""

    @abstractmethod
    def get(self, key: str) -> bytes | None:
        """The stored payload, or ``None`` when the key is vacant."""

    @abstractmethod
    def put_if_absent(self, key: str, payload: bytes) -> bool:
        """Store ``payload`` unless the key is taken; True iff stored now."""

    @abstractmethod
    def replace(self, key: str, payload: bytes) -> None:
        """Unconditionally (re)write ``payload`` under ``key``."""

    @abstractmethod
    def contains(self, key: str) -> bool:
        """Whether an entry exists (without reading it)."""

    @abstractmethod
    def keys(self, prefix: str = "") -> Iterator[str]:
        """All stored keys starting with ``prefix``, in sorted order."""


class LocalFSBackend(StoreBackend):
    """The classic shared-filesystem layout: ``<root>/<token>/<fp>.pkl``.

    This is exactly the directory scheme :class:`~repro.sim.results.ResultStore`
    has always used, extracted behind the seam — existing caches keep
    working, and a cache directory on a shared filesystem is already a
    multi-host backend.  Atomicity comes from temp-file + ``os.link``
    (put-if-absent; link fails on an existing name) and ``os.replace``
    (unconditional), so concurrent writers — threads, processes, or
    hosts sharing NFS — never expose partial entries.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        token, name = _split_key(key)
        return self.root / token / f"{name}.pkl"

    def get(self, key: str) -> bytes | None:
        try:
            return self._path(key).read_bytes()
        except OSError:
            return None

    def _write_tmp(self, path: Path, payload: bytes) -> str:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return tmp

    def put_if_absent(self, key: str, payload: bytes) -> bool:
        path = self._path(key)
        if path.exists():
            return False
        tmp = self._write_tmp(path, payload)
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        except OSError:
            # Filesystems without hard links (rare): fall back to the
            # pre-checked atomic rename.  The earlier exists() check
            # keeps this honest in all but a sub-millisecond race, and
            # a lost race overwrites with byte-identical content.
            os.replace(tmp, path)
            return True
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return True

    def replace(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        tmp = self._write_tmp(path, payload)
        try:
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def keys(self, prefix: str = "") -> Iterator[str]:
        if not self.root.is_dir():
            return
        for token_dir in sorted(self.root.iterdir()):
            if not token_dir.is_dir():
                continue
            for entry in sorted(token_dir.glob("*.pkl")):
                key = f"{token_dir.name}/{entry.name[: -len('.pkl')]}"
                if key.startswith(prefix):
                    yield key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalFSBackend({str(self.root)!r})"


class KVBackend(StoreBackend):
    """Object-store-style backend over any dict-protocol mapping.

    The default is a plain in-process dict (the fabric server's shared
    store, or an ephemeral cache for tests); handing it an
    :class:`~repro.sim.fabric.client.HTTPKVMap` makes it a remote object
    store without changing a line of store code.  The mapping only needs
    ``__getitem__`` / ``__setitem__`` / ``__contains__`` / ``keys()``;
    when it additionally exposes ``put_if_absent(key, payload) -> bool``
    (as the HTTP map does, delegating atomicity to the server), that is
    used directly — otherwise a backend-level lock makes the
    check-then-set atomic for in-process maps.
    """

    def __init__(self, kv: Any | None = None) -> None:
        self.kv = {} if kv is None else kv
        self._lock = threading.Lock()

    def get(self, key: str) -> bytes | None:
        try:
            return self.kv[key]
        except KeyError:
            return None

    def put_if_absent(self, key: str, payload: bytes) -> bool:
        native = getattr(self.kv, "put_if_absent", None)
        if native is not None:
            return bool(native(key, payload))
        with self._lock:
            if key in self.kv:
                return False
            self.kv[key] = payload
            return True

    def replace(self, key: str, payload: bytes) -> None:
        self.kv[key] = payload

    def contains(self, key: str) -> bool:
        return key in self.kv

    def keys(self, prefix: str = "") -> Iterator[str]:
        for key in sorted(self.kv.keys()):
            if key.startswith(prefix):
                yield key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KVBackend({type(self.kv).__name__})"


class TieredStore(StoreBackend):
    """Read-through / write-back composition of a local and a remote tier.

    Reads try ``local`` first and fall back to ``remote``; a remote hit
    is written back into the local tier so later reads stay local.
    Writes publish to ``remote`` first — the shared tier arbitrates
    first-write-wins for the whole fleet — then mirror into ``local``.
    The local tier is strictly a cache: it is always safe to delete.
    """

    def __init__(self, local: StoreBackend, remote: StoreBackend) -> None:
        self.local = local
        self.remote = remote

    def get(self, key: str) -> bytes | None:
        payload = self.local.get(key)
        if payload is not None:
            return payload
        payload = self.remote.get(key)
        if payload is not None:
            self.local.replace(key, payload)
        return payload

    def put_if_absent(self, key: str, payload: bytes) -> bool:
        stored = self.remote.put_if_absent(key, payload)
        mirror = payload if stored else self.remote.get(key)
        if mirror is not None:
            self.local.replace(key, mirror)
        return stored

    def replace(self, key: str, payload: bytes) -> None:
        self.remote.replace(key, payload)
        self.local.replace(key, payload)

    def contains(self, key: str) -> bool:
        return self.local.contains(key) or self.remote.contains(key)

    def keys(self, prefix: str = "") -> Iterator[str]:
        seen: dict[str, None] = {}
        for key in sorted(self.local.keys(prefix)):
            seen[key] = None
        for key in sorted(self.remote.keys(prefix)):
            seen[key] = None
        yield from sorted(seen)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TieredStore(local={self.local!r}, remote={self.remote!r})"
