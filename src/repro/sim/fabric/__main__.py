"""Fabric fleet CLI.

Usage::

    # one queue/KV server per fleet
    python -m repro.sim.fabric serve --port 8765 --lease-duration 120

    # any number of workers, on any host that can reach the server
    python -m repro.sim.fabric worker --url http://HOST:8765
    python -m repro.sim.fabric worker --url http://HOST:8765 \\
        --cache-dir /shared/.eva-cache --idle-exit 60

    # then drive any experiment through the fleet
    python -m repro.experiments run table11 --seeds 5 \\
        --fabric http://HOST:8765

Workers publish results through the server's key/value store (plus a
local read-through cache when ``--cache-dir`` is given), so every host
only needs the repro sources at the same version as the driver — the
content-addressed keys embed the code token and refuse skewed fleets.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.fabric",
        description="Distributed sweep fabric: queue server and workers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the scenario queue + KV server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--lease-duration",
        type=float,
        default=120.0,
        metavar="S",
        help="seconds a lease survives without a heartbeat (default 120)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="executions burned before an item is parked as failed",
    )

    worker = sub.add_parser("worker", help="run one pull-stealing worker loop")
    worker.add_argument("--url", required=True, help="fabric server URL")
    worker.add_argument(
        "--cache-dir",
        default=None,
        help="optional local read-through cache directory",
    )
    worker.add_argument(
        "--worker-id", default=None, help="display identity (default host:pid)"
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="S",
        help="lease-extension cadence (default: lease duration / 3)",
    )
    worker.add_argument(
        "--max-items",
        type=int,
        default=None,
        help="exit after resolving this many leases",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="S",
        help="exit after this long with an empty queue (default: run forever)",
    )
    return parser


def main(argv: list[str]) -> int:
    args = _build_parser().parse_args(argv[1:])
    if args.command == "serve":
        from repro.sim.fabric.server import serve_forever

        serve_forever(
            host=args.host,
            port=args.port,
            lease_duration_s=args.lease_duration,
            max_attempts=args.max_attempts,
        )
        return 0

    from repro.sim.fabric.client import HTTPFabricClient
    from repro.sim.fabric.dispatch import FabricDispatcher
    from repro.sim.fabric.worker import FabricWorker

    client = HTTPFabricClient(args.url)
    store = FabricDispatcher(client).make_store(args.cache_dir)
    worker = FabricWorker(
        client,
        store,
        worker_id=args.worker_id,
        heartbeat_interval_s=args.heartbeat_interval,
    )
    print(
        f"fabric worker {worker.worker_id} pulling from {args.url}",
        flush=True,
    )
    resolved = worker.run(max_items=args.max_items, idle_exit_s=args.idle_exit)
    print(
        f"fabric worker {worker.worker_id} exiting: {resolved} lease(s) "
        f"resolved, {worker.executed} executed",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
