"""Fingerprint-keyed work queue with leases, heartbeats, and expiry.

This is the fabric's scheduling core, kept free of sockets and wall
clocks so it unit-tests exactly: the server wraps it in HTTP, the
in-memory fabric uses it directly, and tests drive time with an
injected monotonic ``clock``.

Protocol (all operations thread-safe, FIFO over submission order):

* ``submit(key, payload)`` — enqueue a work item (a pickled scenario)
  under its content-addressed key.  Re-submitting a known key is a
  no-op (idempotent drivers), except that a *failed* item is re-armed.
* ``lease(worker)`` — pop the oldest queued item and grant a lease with
  a deadline ``lease_duration_s`` from now.  Expired leases are swept
  first, so a scenario whose worker died is **re-stolen** by whichever
  live worker asks next.
* ``heartbeat(lease_id)`` — push the deadline out; long simulations
  beat periodically so their leases never expire mid-run.
* ``complete(lease_id)`` / ``fail(lease_id, error)`` — resolve a lease.
  Failures requeue the item until ``max_attempts`` executions have been
  burned, then park it as permanently failed with the last error (the
  driver surfaces that to the user).  A stale lease id (expired and
  re-stolen) resolves nothing and reports ``False`` — the result the
  late worker already published through the content-addressed backend
  is byte-identical to the winner's, so dropping the stale resolution
  is safe by construction.

Leases and lease ids are minted from deterministic counters; the only
nondeterminism in this module is the clock, which orders *scheduling*,
never results.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["LeaseGrant", "WorkItem", "WorkQueue"]

#: Work-item lifecycle states.
_QUEUED, _LEASED, _DONE, _FAILED = "queued", "leased", "done", "failed"

DEFAULT_LEASE_DURATION_S = 60.0
DEFAULT_MAX_ATTEMPTS = 5


@dataclass(frozen=True)
class LeaseGrant:
    """One granted lease: the item plus the lease's identity and terms."""

    lease_id: str
    key: str
    payload: bytes
    duration_s: float
    attempt: int


@dataclass
class WorkItem:
    """Internal per-key record (exposed read-only via :meth:`WorkQueue.item`)."""

    key: str
    payload: bytes
    state: str = _QUEUED
    attempts: int = 0
    lease_id: str | None = None
    deadline: float = 0.0
    worker: str = ""
    error: str | None = None
    history: list[str] = field(default_factory=list)


class WorkQueue:
    """Leased FIFO of content-addressed work items (see module docstring)."""

    def __init__(
        self,
        lease_duration_s: float = DEFAULT_LEASE_DURATION_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock=time.monotonic,
    ) -> None:
        if not lease_duration_s > 0:
            raise ValueError(
                f"lease_duration_s must be positive, got {lease_duration_s}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_duration_s = float(lease_duration_s)
        self.max_attempts = int(max_attempts)
        self._clock = clock
        self._lock = threading.Lock()
        self._items: dict[str, WorkItem] = {}
        self._queue: deque[str] = deque()
        self._leases: dict[str, str] = {}  # lease_id -> key
        self._lease_counter = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, key: str, payload: bytes) -> bool:
        """Enqueue ``key``; True iff this call added (or re-armed) it."""
        with self._lock:
            item = self._items.get(key)
            if item is None:
                self._items[key] = WorkItem(key=key, payload=payload)
                self._queue.append(key)
                return True
            if item.state == _FAILED:
                # A fresh submission re-arms a permanently failed item
                # (e.g. after the operator fixed the environment).
                item.state = _QUEUED
                item.attempts = 0
                item.error = None
                self._queue.append(key)
                return True
            return False

    def submit_many(self, items: list[tuple[str, bytes]]) -> int:
        return sum(1 for key, payload in items if self.submit(key, payload))

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def lease(self, worker: str = "") -> LeaseGrant | None:
        """Grant the oldest queued item to ``worker``, or None when idle."""
        with self._lock:
            self._sweep_expired()
            while self._queue:
                key = self._queue.popleft()
                item = self._items[key]
                if item.state != _QUEUED:
                    continue  # resolved while queued (stale queue entry)
                self._lease_counter += 1
                lease_id = f"L{self._lease_counter}"
                item.state = _LEASED
                item.attempts += 1
                item.lease_id = lease_id
                item.deadline = self._clock() + self.lease_duration_s
                item.worker = worker
                item.history.append(f"leased:{lease_id}:{worker}")
                self._leases[lease_id] = key
                return LeaseGrant(
                    lease_id=lease_id,
                    key=key,
                    payload=item.payload,
                    duration_s=self.lease_duration_s,
                    attempt=item.attempts,
                )
            return None

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease; False when the lease is stale/unknown."""
        with self._lock:
            self._sweep_expired()
            item = self._live_lease(lease_id)
            if item is None:
                return False
            item.deadline = self._clock() + self.lease_duration_s
            return True

    def complete(self, lease_id: str) -> bool:
        """Resolve a lease as done; False when the lease is stale/unknown."""
        with self._lock:
            self._sweep_expired()
            item = self._live_lease(lease_id)
            if item is None:
                return False
            self._resolve(item, _DONE, None)
            return True

    def fail(self, lease_id: str, error: str = "") -> bool:
        """Resolve a lease as failed: requeue, or park after max attempts."""
        with self._lock:
            self._sweep_expired()
            item = self._live_lease(lease_id)
            if item is None:
                return False
            self._release(item)
            item.error = error or "worker reported failure"
            if item.attempts >= self.max_attempts:
                item.state = _FAILED
            else:
                item.state = _QUEUED
                self._queue.append(item.key)
            return True

    def mark_done(self, key: str) -> bool:
        """Resolve ``key`` as done regardless of lease state.

        The driver calls this when the result turned up in the shared
        store through some other channel (a warm cache on another
        driver, a late worker whose lease had expired): the content-
        addressed entry *is* the completion certificate.
        """
        with self._lock:
            item = self._items.get(key)
            if item is None or item.state == _DONE:
                return False
            self._resolve(item, _DONE, None)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def poll(self, keys: list[str]) -> dict:
        """Driver-side status of ``keys``: done / failed / pending."""
        with self._lock:
            self._sweep_expired()
            done: list[str] = []
            failed: dict[str, str] = {}
            pending = 0
            for key in keys:
                item = self._items.get(key)
                if item is None:
                    continue
                if item.state == _DONE:
                    done.append(key)
                elif item.state == _FAILED:
                    failed[key] = item.error or "failed"
                else:
                    pending += 1
            return {"done": done, "failed": failed, "pending": pending}

    def status(self) -> dict[str, int]:
        with self._lock:
            self._sweep_expired()
            counts = {_QUEUED: 0, _LEASED: 0, _DONE: 0, _FAILED: 0}
            for item in self._items.values():
                counts[item.state] += 1
            return counts

    def item(self, key: str) -> WorkItem | None:
        with self._lock:
            return self._items.get(key)

    def outstanding(self) -> int:
        """Items not yet resolved (queued or leased)."""
        counts = self.status()
        return counts[_QUEUED] + counts[_LEASED]

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _live_lease(self, lease_id: str) -> WorkItem | None:
        key = self._leases.get(lease_id)
        if key is None:
            return None
        item = self._items[key]
        if item.lease_id != lease_id or item.state != _LEASED:
            return None
        return item

    def _release(self, item: WorkItem) -> None:
        if item.lease_id is not None:
            self._leases.pop(item.lease_id, None)
        item.lease_id = None
        item.worker = ""
        item.deadline = 0.0

    def _resolve(self, item: WorkItem, state: str, error: str | None) -> None:
        self._release(item)
        item.state = state
        item.error = error

    def _sweep_expired(self) -> None:
        """Requeue every leased item whose deadline passed (re-steal)."""
        now = self._clock()
        expired = [
            item
            for item in self._items.values()
            if item.state == _LEASED and item.deadline < now
        ]
        for item in sorted(expired, key=lambda it: it.key):
            item.history.append(f"expired:{item.lease_id}:{item.worker}")
            self._release(item)
            if item.attempts >= self.max_attempts:
                item.state = _FAILED
                item.error = (
                    f"lease expired {item.attempts} time(s) without completion"
                )
            else:
                item.state = _QUEUED
                self._queue.append(item.key)
