"""Fabric clients: the in-memory fabric and the HTTP transports.

Workers and the driver speak one small duck-typed interface:

* ``submit_many([(key, payload), ...]) -> int``
* ``lease(worker) -> LeaseGrant | None``
* ``heartbeat(lease_id) -> bool``
* ``complete(lease_id) -> bool``
* ``fail(lease_id, error) -> bool``
* ``poll(keys) -> {"done": [...], "failed": {key: err}, "pending": n}``
* ``mark_done(key) -> bool``
* ``kv_map()`` — the dict-protocol result map this fabric shares
  (feed it to :class:`~repro.sim.fabric.backends.KVBackend`).

:class:`InMemoryFabric` implements it directly over a
:class:`~repro.sim.fabric.leases.WorkQueue` plus a
:class:`~repro.sim.fabric.backends.KVBackend` — single-process
multi-worker sweeps (threads) and the fault-injection tests run
against it with no sockets at all.  :class:`HTTPFabricClient` speaks
the same interface to a remote :class:`~repro.sim.fabric.server.FabricServer`
over stdlib ``urllib``; :class:`HTTPKVMap` is the matching
dict-protocol view of the server's key/value store.
"""

from __future__ import annotations

import base64
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterator

from repro.sim.fabric.backends import KVBackend
from repro.sim.fabric.leases import LeaseGrant, WorkQueue

__all__ = ["HTTPFabricClient", "HTTPKVMap", "InMemoryFabric"]


class InMemoryFabric:
    """A whole fabric in one process: queue + shared KV, no sockets.

    The default configuration for tests and single-host smoke runs;
    workers run as threads against the same object the driver submits
    to.  ``clock`` is forwarded to the :class:`WorkQueue`, so tests
    can expire leases deterministically without sleeping.
    """

    def __init__(
        self,
        lease_duration_s: float = 60.0,
        max_attempts: int = 5,
        clock=time.monotonic,
        kv: KVBackend | None = None,
    ) -> None:
        self.queue = WorkQueue(
            lease_duration_s=lease_duration_s,
            max_attempts=max_attempts,
            clock=clock,
        )
        self.kv = kv if kv is not None else KVBackend()

    def submit_many(self, items: list[tuple[str, bytes]]) -> int:
        return self.queue.submit_many(items)

    def lease(self, worker: str = "") -> LeaseGrant | None:
        return self.queue.lease(worker)

    def heartbeat(self, lease_id: str) -> bool:
        return self.queue.heartbeat(lease_id)

    def complete(self, lease_id: str) -> bool:
        return self.queue.complete(lease_id)

    def fail(self, lease_id: str, error: str = "") -> bool:
        return self.queue.fail(lease_id, error)

    def poll(self, keys: list[str]) -> dict:
        return self.queue.poll(list(keys))

    def mark_done(self, key: str) -> bool:
        return self.queue.mark_done(key)

    def kv_map(self) -> Any:
        return self.kv.kv


class _HTTPTransport:
    """Tiny JSON-over-HTTP helper shared by the client and the KV map."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, bytes]:
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": content_type} if body is not None else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def call(self, path: str, payload: dict) -> dict:
        status, raw = self.request(
            "POST", path, json.dumps(payload).encode("utf-8")
        )
        if status != 200:
            raise RuntimeError(
                f"fabric server {self.base_url}{path} returned {status}: "
                f"{raw[:200]!r}"
            )
        return json.loads(raw)


class HTTPKVMap:
    """Dict-protocol view of a fabric server's key/value store.

    Implements exactly what :class:`~repro.sim.fabric.backends.KVBackend`
    consumes — ``__getitem__`` / ``__setitem__`` / ``__contains__`` /
    ``keys()`` plus a native ``put_if_absent`` whose atomicity the
    server provides — so ``KVBackend(HTTPKVMap(url))`` is a remote
    object store.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self._http = _HTTPTransport(base_url, timeout_s=timeout_s)

    def _kv_path(self, key: str) -> str:
        return "/kv/" + urllib.parse.quote(key, safe="/")

    def __getitem__(self, key: str) -> bytes:
        status, raw = self._http.request("GET", self._kv_path(key))
        if status == 404:
            raise KeyError(key)
        if status != 200:
            raise RuntimeError(f"kv get {key!r} returned {status}")
        return raw

    def __setitem__(self, key: str, payload: bytes) -> None:
        status, _ = self._http.request(
            "PUT",
            self._kv_path(key) + "?replace=1",
            payload,
            content_type="application/octet-stream",
        )
        if status != 200:
            raise RuntimeError(f"kv replace {key!r} returned {status}")

    def __contains__(self, key: str) -> bool:
        status, _ = self._http.request("HEAD", self._kv_path(key))
        return status == 200

    def put_if_absent(self, key: str, payload: bytes) -> bool:
        status, raw = self._http.request(
            "PUT",
            self._kv_path(key),
            payload,
            content_type="application/octet-stream",
        )
        if status != 200:
            raise RuntimeError(f"kv put {key!r} returned {status}")
        return bool(json.loads(raw)["stored"])

    def keys(self, prefix: str = "") -> Iterator[str]:
        status, raw = self._http.request(
            "GET", "/kvkeys?prefix=" + urllib.parse.quote(prefix, safe="")
        )
        if status != 200:
            raise RuntimeError(f"kv keys returned {status}")
        yield from json.loads(raw)


class HTTPFabricClient:
    """The fabric interface over HTTP (see module docstring)."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self._http = _HTTPTransport(base_url, timeout_s=timeout_s)

    def submit_many(self, items: list[tuple[str, bytes]]) -> int:
        payload = {
            "items": [
                {
                    "key": key,
                    "payload": base64.b64encode(blob).decode("ascii"),
                }
                for key, blob in items
            ]
        }
        return int(self._http.call("/submit", payload)["accepted"])

    def lease(self, worker: str = "") -> LeaseGrant | None:
        reply = self._http.call("/lease", {"worker": worker})
        grant = reply.get("lease")
        if grant is None:
            return None
        return LeaseGrant(
            lease_id=grant["lease_id"],
            key=grant["key"],
            payload=base64.b64decode(grant["payload"]),
            duration_s=float(grant["duration_s"]),
            attempt=int(grant["attempt"]),
        )

    def heartbeat(self, lease_id: str) -> bool:
        return bool(self._http.call("/heartbeat", {"lease_id": lease_id})["ok"])

    def complete(self, lease_id: str) -> bool:
        return bool(self._http.call("/complete", {"lease_id": lease_id})["ok"])

    def fail(self, lease_id: str, error: str = "") -> bool:
        return bool(
            self._http.call("/fail", {"lease_id": lease_id, "error": error})["ok"]
        )

    def poll(self, keys: list[str]) -> dict:
        return self._http.call("/poll", {"keys": list(keys)})

    def mark_done(self, key: str) -> bool:
        return bool(self._http.call("/mark_done", {"key": key})["ok"])

    def status(self) -> dict:
        status, raw = self._http.request("GET", "/status")
        if status != 200:
            raise RuntimeError(f"fabric status returned {status}")
        return json.loads(raw)

    def kv_map(self) -> HTTPKVMap:
        return HTTPKVMap(self.base_url)
