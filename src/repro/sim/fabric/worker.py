"""The pull-stealing fabric worker loop.

A worker owns nothing but a fabric client and a result store whose
backend is shared with the fleet.  Its loop:

1. **lease** a scenario from the queue (pull — an idle worker steals
   whatever is oldest, so load balance emerges without a placement
   policy);
2. **fast-path**: if the content-addressed result already exists in the
   shared store (another worker published it after this item was
   re-queued), skip execution and complete immediately;
3. **execute** through the ordinary
   :func:`repro.sim.batch._execute_scenario` — the exact function
   serial ``run_batch`` uses, so results are byte-identical by
   construction — while a heartbeat thread keeps the lease alive;
4. **publish** the outcome through the store (atomic put-if-absent:
   duplicate executions converge on the first writer's byte-identical
   entry);
5. **complete** the lease.  A stale lease (expired and re-stolen while
   we were executing) completes as a no-op — the published entry is
   the completion certificate either way.

Exceptions inside the simulation are reported with ``fail`` so the
queue can retry elsewhere or park the item with the error message.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
import traceback
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batch import Scenario, ScenarioOutcome
    from repro.sim.fabric.leases import LeaseGrant
    from repro.sim.results import ResultStore

__all__ = ["FabricWorker"]


def _default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class _Heartbeat:
    """Background thread extending one lease until the work resolves."""

    def __init__(self, client: Any, lease_id: str, interval_s: float) -> None:
        self._client = client
        self._lease_id = lease_id
        self._interval_s = interval_s
        self._done = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{lease_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._done.wait(self._interval_s):
            try:
                if not self._client.heartbeat(self._lease_id):
                    return  # lease went stale; publishing stays idempotent
            except Exception:
                return  # server unreachable; let the lease lapse

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._done.set()
        self._thread.join(timeout=5.0)


class FabricWorker:
    """One worker loop bound to a fabric client and a shared store.

    Args:
        client: Fabric interface (:class:`~repro.sim.fabric.client.InMemoryFabric`
            or :class:`~repro.sim.fabric.client.HTTPFabricClient`).
        store: :class:`~repro.sim.results.ResultStore` whose backend the
            whole fleet shares (HTTP KV, tiered, or a shared filesystem).
        worker_id: Display identity in lease records.
        heartbeat_interval_s: Lease-extension cadence; ``None`` derives
            one third of the granted lease duration.
        executor: Scenario runner override (tests inject crashing or
            blocking executors); defaults to the batch layer's
            :func:`~repro.sim.batch._execute_scenario`.
        poll_interval_s: Idle sleep between lease attempts.
    """

    def __init__(
        self,
        client: Any,
        store: "ResultStore",
        worker_id: str | None = None,
        heartbeat_interval_s: float | None = None,
        executor: "Callable[[Scenario], ScenarioOutcome] | None" = None,
        poll_interval_s: float = 0.05,
    ) -> None:
        self.client = client
        self.store = store
        self.worker_id = worker_id or _default_worker_id()
        self.heartbeat_interval_s = heartbeat_interval_s
        self.poll_interval_s = poll_interval_s
        if executor is None:
            from repro.sim.batch import _execute_scenario

            executor = _execute_scenario
        self.executor = executor
        self.executed = 0  # scenarios actually simulated here
        self.completed = 0  # leases resolved (incl. fast-path skips)

    # ------------------------------------------------------------------
    def run(
        self,
        max_items: int | None = None,
        idle_exit_s: float | None = None,
        stop: threading.Event | None = None,
    ) -> int:
        """Pull and execute until stopped; returns leases resolved.

        ``max_items`` bounds resolved leases; ``idle_exit_s`` exits after
        that long without work (the CLI worker's shutdown condition);
        ``stop`` is checked between leases.
        """
        resolved = 0
        idle_since: float | None = None
        while True:
            if stop is not None and stop.is_set():
                return resolved
            if max_items is not None and resolved >= max_items:
                return resolved
            grant = self.client.lease(self.worker_id)
            if grant is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if idle_exit_s is not None and now - idle_since >= idle_exit_s:
                    return resolved
                time.sleep(self.poll_interval_s)
                continue
            idle_since = None
            self.run_one(grant)
            resolved += 1

    def run_one(self, grant: "LeaseGrant") -> bool:
        """Execute one granted lease; True iff the lease completed live."""
        interval = self.heartbeat_interval_s
        if interval is None:
            interval = max(grant.duration_s / 3.0, 0.02)
        if self.store.has_key(grant.key):
            # Another worker already published this content-addressed
            # result (duplicate lease after an expiry); don't re-simulate.
            done = self.client.complete(grant.lease_id)
            self.completed += int(done)
            return done
        try:
            scenario: "Scenario" = pickle.loads(grant.payload)
            with _Heartbeat(self.client, grant.lease_id, interval):
                outcome = self.executor(scenario)
            self.publish(grant.key, scenario, outcome)
        except Exception as exc:
            self.client.fail(
                grant.lease_id,
                f"{type(exc).__name__}: {exc}\n"
                + "".join(traceback.format_exception(exc)[-3:]),
            )
            return False
        self.executed += 1
        done = self.client.complete(grant.lease_id)
        self.completed += int(done)
        return done

    def publish(
        self, key: str, scenario: "Scenario", outcome: "ScenarioOutcome"
    ) -> None:
        """Publish under the *lease* key (first-write-wins).

        The lease key embeds the driver's code token.  If this worker's
        own token disagrees — the worker is running different code than
        the driver — publishing under our token would strand the driver
        waiting forever, so that skew is an error, not a silent remap.
        """
        own_key = self.store.key_for_scenario(scenario)
        if own_key is not None and own_key != key:
            raise RuntimeError(
                f"code-token skew: driver submitted {key.split('/', 1)[0]} "
                f"but this worker runs {own_key.split('/', 1)[0]}; "
                "deploy the same repro sources on every host"
            )
        self.store.put(scenario, outcome)
