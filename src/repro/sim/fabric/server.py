"""The scenario queue service: stdlib HTTP over the work queue + KV store.

One :class:`FabricServer` per sweep fleet.  It owns two pieces of
state — a :class:`~repro.sim.fabric.leases.WorkQueue` of pickled
scenarios keyed by ``<code-token>/<fingerprint>`` and a
:class:`~repro.sim.fabric.backends.KVBackend` holding published result
entries under the same keys — and exposes both over a small JSON/HTTP
protocol (see :mod:`repro.sim.fabric.client` for the client side):

======================  ====================================================
``POST /submit``        enqueue work items ``{"items": [{key, payload}]}``
``POST /lease``         grant one lease to the calling worker
``POST /heartbeat``     extend a lease
``POST /complete``      resolve a lease as done
``POST /fail``          resolve a lease as failed (requeue / park)
``POST /poll``          driver status of a key list
``POST /mark_done``     resolve a key whose result arrived out-of-band
``GET  /status``        queue + store counters
``GET  /health``        liveness probe
``GET|HEAD /kv/<key>``  read / probe a stored entry (raw bytes)
``PUT  /kv/<key>``      atomic put-if-absent (``?replace=1`` overwrites)
``GET  /kvkeys``        list stored keys (``?prefix=``)
======================  ====================================================

The server is a ``ThreadingHTTPServer``: queue operations serialize on
the :class:`WorkQueue` lock, KV writes on the backend lock, so every
operation a client observes is atomic.  Nothing here touches
simulation results beyond ferrying opaque bytes — the byte-identity
contract lives entirely in the content-addressed keys.
"""

from __future__ import annotations

import base64
import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.sim.fabric.backends import KVBackend
from repro.sim.fabric.leases import WorkQueue

__all__ = ["FabricServer", "serve_forever"]


class FabricServer:
    """The queue + KV service; ``start()`` runs it on a daemon thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        lease_duration_s: float = 60.0,
        max_attempts: int = 5,
    ) -> None:
        self.queue = WorkQueue(
            lease_duration_s=lease_duration_s, max_attempts=max_attempts
        )
        self.kv = KVBackend()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "FabricServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="fabric-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FabricServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def _make_handler(server: FabricServer) -> type[BaseHTTPRequestHandler]:
    queue = server.queue
    kv = server.kv

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- helpers ----------------------------------------------------
        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length", "0"))
            return self.rfile.read(length) if length else b""

        def _send_json(self, payload: dict, status: int = 200) -> None:
            raw = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _send_bytes(self, raw: bytes, status: int = 200) -> None:
            self.send_response(status)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)

        def _kv_key(self, parsed: urllib.parse.ParseResult) -> str:
            return urllib.parse.unquote(parsed.path[len("/kv/") :])

        def log_message(self, format: str, *args: Any) -> None:
            pass  # quiet; the CLI layer reports what matters

        # -- queue endpoints --------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                body = json.loads(self._read_body() or b"{}")
            except json.JSONDecodeError:
                self._send_json({"error": "invalid JSON body"}, status=400)
                return
            path = urllib.parse.urlparse(self.path).path
            if path == "/submit":
                items = [
                    (entry["key"], base64.b64decode(entry["payload"]))
                    for entry in body.get("items", [])
                ]
                self._send_json({"accepted": queue.submit_many(items)})
            elif path == "/lease":
                grant = queue.lease(str(body.get("worker", "")))
                if grant is None:
                    self._send_json(
                        {"lease": None, "outstanding": queue.outstanding()}
                    )
                else:
                    self._send_json(
                        {
                            "lease": {
                                "lease_id": grant.lease_id,
                                "key": grant.key,
                                "payload": base64.b64encode(
                                    grant.payload
                                ).decode("ascii"),
                                "duration_s": grant.duration_s,
                                "attempt": grant.attempt,
                            }
                        }
                    )
            elif path == "/heartbeat":
                self._send_json({"ok": queue.heartbeat(body.get("lease_id", ""))})
            elif path == "/complete":
                self._send_json({"ok": queue.complete(body.get("lease_id", ""))})
            elif path == "/fail":
                self._send_json(
                    {
                        "ok": queue.fail(
                            body.get("lease_id", ""), body.get("error", "")
                        )
                    }
                )
            elif path == "/poll":
                self._send_json(queue.poll(list(body.get("keys", []))))
            elif path == "/mark_done":
                self._send_json({"ok": queue.mark_done(body.get("key", ""))})
            else:
                self._send_json({"error": f"unknown endpoint {path}"}, status=404)

        # -- KV endpoints -----------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            parsed = urllib.parse.urlparse(self.path)
            if parsed.path == "/health":
                self._send_json({"ok": True})
            elif parsed.path == "/status":
                counts = queue.status()
                counts["kv_entries"] = len(sorted(kv.keys()))
                self._send_json(counts)
            elif parsed.path == "/kvkeys":
                prefix = urllib.parse.parse_qs(parsed.query).get(
                    "prefix", [""]
                )[0]
                self._send_json(sorted(kv.keys(prefix)))
            elif parsed.path.startswith("/kv/"):
                payload = kv.get(self._kv_key(parsed))
                if payload is None:
                    self._send_json({"error": "not found"}, status=404)
                else:
                    self._send_bytes(payload)
            else:
                self._send_json(
                    {"error": f"unknown endpoint {parsed.path}"}, status=404
                )

        def do_HEAD(self) -> None:  # noqa: N802 - http.server API
            parsed = urllib.parse.urlparse(self.path)
            if parsed.path.startswith("/kv/") and kv.contains(
                self._kv_key(parsed)
            ):
                self.send_response(200)
                self.send_header("Content-Length", "0")
                self.end_headers()
            else:
                self.send_response(404)
                self.send_header("Content-Length", "0")
                self.end_headers()

        def do_PUT(self) -> None:  # noqa: N802 - http.server API
            parsed = urllib.parse.urlparse(self.path)
            if not parsed.path.startswith("/kv/"):
                self._send_json(
                    {"error": f"unknown endpoint {parsed.path}"}, status=404
                )
                return
            key = self._kv_key(parsed)
            payload = self._read_body()
            replace = "replace" in urllib.parse.parse_qs(parsed.query)
            if replace:
                kv.replace(key, payload)
                self._send_json({"stored": True})
            else:
                self._send_json({"stored": kv.put_if_absent(key, payload)})

    return Handler


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8765,
    lease_duration_s: float = 60.0,
    max_attempts: int = 5,
) -> None:
    """Run a fabric server in the foreground (the ``serve`` CLI command)."""
    server = FabricServer(
        host=host,
        port=port,
        lease_duration_s=lease_duration_s,
        max_attempts=max_attempts,
    )
    print(f"fabric server listening on {server.url}", flush=True)
    try:
        server._httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server._httpd.server_close()
