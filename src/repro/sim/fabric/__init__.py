"""Distributed sweep fabric: pluggable result-store backends plus a
work-stealing multi-host dispatcher.

The fabric turns :func:`repro.sim.batch.run_batch` from a local process
fan-out into a fleet-wide sweep without changing a single scenario:

* :mod:`repro.sim.fabric.backends` — the ``StoreBackend`` seam under
  :class:`~repro.sim.results.ResultStore`: the classic directory layout
  (:class:`LocalFSBackend`), an object-store-style key/value backend
  (:class:`KVBackend`, in-memory dict or any dict-protocol transport
  such as the HTTP map below), and a read-through/write-back
  :class:`TieredStore` composing a fast local tier with a shared remote
  tier.
* :mod:`repro.sim.fabric.leases` — the scenario queue: fingerprint-keyed
  work items leased to workers with heartbeats and lease expiry, so a
  killed worker's scenario is re-stolen by a live one.
* :mod:`repro.sim.fabric.server` — a stdlib ``http.server`` service
  exposing the queue and a key/value store over JSON/HTTP.
* :mod:`repro.sim.fabric.client` — :class:`HTTPFabricClient` /
  :class:`HTTPKVMap` (urllib transports) and :class:`InMemoryFabric`
  (the same interface, in-process, for tests and single-host runs).
* :mod:`repro.sim.fabric.worker` — the pull-stealing worker loop:
  lease, execute via the ordinary scenario executor, publish through the
  backend, complete.
* :mod:`repro.sim.fabric.dispatch` — :class:`FabricDispatcher`, the
  driver-side object ``run_batch(dispatcher=...)`` delegates to.

Everything is idempotent by construction: work items and results are
keyed by ``<code-token>/<scenario-fingerprint>`` (content-addressed),
so duplicate execution — a lease that expired while its worker was
still alive, two racing workers — converges on byte-identical entries
and first-write-wins publication.
"""

from repro.sim.fabric.backends import (
    KVBackend,
    LocalFSBackend,
    StoreBackend,
    TieredStore,
)
from repro.sim.fabric.client import HTTPFabricClient, HTTPKVMap, InMemoryFabric
from repro.sim.fabric.dispatch import FabricDispatcher
from repro.sim.fabric.leases import LeaseGrant, WorkQueue
from repro.sim.fabric.server import FabricServer, serve_forever
from repro.sim.fabric.worker import FabricWorker

__all__ = [
    "FabricDispatcher",
    "FabricServer",
    "FabricWorker",
    "HTTPFabricClient",
    "HTTPKVMap",
    "InMemoryFabric",
    "KVBackend",
    "LeaseGrant",
    "LocalFSBackend",
    "StoreBackend",
    "TieredStore",
    "WorkQueue",
    "serve_forever",
]
