"""Driver-side dispatch: ``run_batch(dispatcher=...)`` delegates here.

:class:`FabricDispatcher` turns a scenario list into fabric work items
and blocks until the fleet has published every result:

1. consult the store — cached scenarios never reach the queue (the
   classic warm-cache path, now fleet-wide);
2. submit one work item per *distinct* content-addressed key (identical
   scenarios under different display names collapse onto one item);
3. poll the queue; as keys complete, read the published entries back
   through the shared backend — byte-identical pickled originals;
4. scenarios that cannot be fingerprinted (live RNG state) never had a
   content address to publish under, so they execute locally exactly as
   the serial path would.

A permanently failed item (it exhausted the queue's ``max_attempts``)
raises with the scenario labels and the last worker error — a fabric
sweep never silently drops cells.
"""

from __future__ import annotations

import pickle
import time
from typing import TYPE_CHECKING, Any

from repro.sim.fabric.backends import KVBackend, LocalFSBackend, TieredStore
from repro.sim.fabric.client import HTTPFabricClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batch import Scenario, ScenarioOutcome
    from repro.sim.results import ResultStore

__all__ = ["FabricDispatcher"]


class FabricDispatcher:
    """Dispatch scenario batches to a fabric fleet (see module docstring).

    Args:
        client: A fabric client, or a server URL string.
        poll_interval_s: Driver poll cadence while waiting on the fleet.
        timeout_s: Overall wait bound per batch (``None`` = wait forever;
            lease expiry + ``max_attempts`` already bound lost work).
    """

    def __init__(
        self,
        client: Any,
        poll_interval_s: float = 0.2,
        timeout_s: float | None = None,
    ) -> None:
        if isinstance(client, str):
            client = HTTPFabricClient(client)
        self.client = client
        self.poll_interval_s = poll_interval_s
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def make_store(self, cache_dir: str | None = None) -> "ResultStore":
        """A store wired to this fabric's shared result map.

        With ``cache_dir``, a :class:`TieredStore` reads through the
        local directory before the fabric KV and writes fetched results
        back, so repeat drivers stay warm even against a fresh server.
        """
        from repro.sim.results import ResultStore

        remote = KVBackend(self.client.kv_map())
        backend = (
            TieredStore(LocalFSBackend(cache_dir), remote)
            if cache_dir is not None
            else remote
        )
        return ResultStore(cache_dir, backend=backend)

    # ------------------------------------------------------------------
    def run_batch(
        self,
        scenarios: "list[Scenario]",
        store: "ResultStore | None" = None,
    ) -> "list[ScenarioOutcome]":
        """Run ``scenarios`` on the fleet; outcomes in input order.

        ``store`` must share its backend with the fleet (build it with
        :meth:`make_store`, or hand the workers the same shared
        filesystem root); ``None`` builds an ephemeral fabric-backed
        store.
        """
        from dataclasses import replace

        from repro.sim.batch import _execute_scenario

        if store is None:
            store = self.make_store()
        outcomes: "list[ScenarioOutcome | None]" = [None] * len(scenarios)
        by_key: dict[str, list[int]] = {}
        local: list[int] = []
        for index, scenario in enumerate(scenarios):
            cached = store.get(scenario)
            if cached is not None:
                outcomes[index] = cached
                continue
            key = store.key_for_scenario(scenario, count_uncacheable=False)
            if key is None:
                local.append(index)  # uncacheable: no content address
                continue
            by_key.setdefault(key, []).append(index)

        if by_key:
            self.client.submit_many(
                [
                    (key, pickle.dumps(scenarios[indices[0]]))
                    for key, indices in sorted(by_key.items())
                ]
            )
            self._wait(scenarios, by_key, store)
            for key, indices in sorted(by_key.items()):
                entry = store.fetch_key(key)
                if entry is None:
                    raise RuntimeError(
                        f"fabric completed {key} but the shared store has "
                        "no readable entry for it; worker and driver must "
                        "share one backend"
                    )
                for index in indices:
                    outcomes[index] = replace(
                        entry, scenario=scenarios[index]
                    )

        for index in local:
            outcomes[index] = _execute_scenario(scenarios[index])
        return outcomes  # type: ignore[return-value]  # every slot is filled

    # ------------------------------------------------------------------
    def _wait(
        self,
        scenarios: "list[Scenario]",
        by_key: dict[str, list[int]],
        store: "ResultStore",
    ) -> None:
        def labels(key: str) -> str:
            return ", ".join(
                scenarios[index].label for index in by_key[key]
            )

        deadline = (
            time.monotonic() + self.timeout_s
            if self.timeout_s is not None
            else None
        )
        unresolved = dict.fromkeys(sorted(by_key))
        while unresolved:
            reply = self.client.poll(list(unresolved))
            for key in reply["done"]:
                unresolved.pop(key, None)
            failed = reply.get("failed", {})
            if failed:
                details = "; ".join(
                    f"{labels(key)}: {error.strip().splitlines()[-1]}"
                    for key, error in sorted(failed.items())
                )
                raise RuntimeError(
                    f"{len(failed)} fabric work item(s) permanently "
                    f"failed — {details}"
                )
            # A result can land in the shared store without its lease
            # completing (the worker died right after publishing, or a
            # foreign driver ran the same cell): the entry itself is
            # authoritative, so resolve those keys too.
            for key in list(unresolved):
                if store.has_key(key):
                    self.client.mark_done(key)
                    unresolved.pop(key, None)
            if not unresolved:
                return
            if deadline is not None and time.monotonic() > deadline:
                waiting = "; ".join(labels(key) for key in unresolved)
                raise TimeoutError(
                    f"fabric batch timed out after {self.timeout_s}s with "
                    f"{len(unresolved)} item(s) outstanding — {waiting}. "
                    "Are any workers attached to this server?"
                )
            time.sleep(self.poll_interval_s)
