"""Simulation metrics (§6.1).

Collects the statistics the paper reports: total dollar cost, per-job JCT
and idle time, normalized job throughput, time-weighted resource
allocation (Figure/Table columns "Avg. Resource Alloc."), time-weighted
tasks-per-instance, migration counts, instances launched, and per-instance
uptimes (the Figure 3 CDF).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.cluster.resources import RESOURCE_NAMES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.accounting import ClusterAccounting


@dataclass(frozen=True, slots=True)
class FailureOutcome:
    """One injected instance failure (crash or domain shock).

    Recorded in dispatch order.  ``job_losses`` keeps the *per-job*
    rolled-back work (sorted by job id within the event) rather than a
    pre-summed total, so
    :func:`~repro.sim.accounting.naive_failure_totals` can replay the
    exact addition sequence of the O(1) accounting path and compare the
    work-lost total bit for bit.

    ``instance_index`` is the victim's **per-run launch ordinal** (0 for
    the run's first launch), *not* its ``i-...`` id: instance ids come
    from a process-global counter (see
    :mod:`repro.cluster.instance`), so embedding one in the result
    would break the byte-identity contract between runs in the same
    process and between serial and parallel batch execution.
    """

    instance_index: int
    time_s: float
    failure_domain: int
    #: ``"crash"`` (independent draw) or ``"domain-shock"`` (correlated).
    kind: str
    #: Tasks knocked back to the queue (each counts one restart).
    tasks_lost: int
    #: ``(job_id, rolled-back standalone-hours)`` per affected job with
    #: un-checkpointed progress, in sorted-job-id order.
    job_losses: tuple[tuple[str, float], ...]

    @property
    def work_lost_h(self) -> float:
        return sum(lost for _, lost in self.job_losses)


@dataclass(frozen=True, slots=True)
class RepairOutcome:
    """One job outage span: instance failure until its rate recovered.

    Recorded in recovery order; per-job MTTR aggregates over these.
    """

    job_id: str
    failed_s: float
    recovered_s: float

    @property
    def repair_s(self) -> float:
        return self.recovered_s - self.failed_s


@dataclass(frozen=True, slots=True)
class DeadlineOutcome:
    """One deadline-bearing job's SLO record.

    ``lateness_s`` is ``max(0, finish_s - deadline_s)``; a job met its
    deadline iff its lateness is exactly zero (``finish_s`` strictly
    beyond the deadline always yields strictly positive lateness, so the
    two encodings cannot disagree).
    """

    job_id: str
    deadline_s: float
    finish_s: float
    lateness_s: float

    @property
    def met(self) -> bool:
        return self.lateness_s == 0.0


@dataclass
class JobOutcome:
    """Per-job record produced by the simulator."""

    job_id: str
    workload: str
    num_tasks: int
    arrival_s: float
    finish_s: float
    duration_hours: float
    idle_hours: float

    @property
    def jct_hours(self) -> float:
        return (self.finish_s - self.arrival_s) / 3600.0

    @property
    def active_hours(self) -> float:
        return max(1e-12, self.jct_hours - self.idle_hours)

    @property
    def normalized_tput(self) -> float:
        """Standalone duration over active (non-idle) execution time.

        Equals 1.0 when the job ran without interference; lower when
        co-location stretched execution.
        """
        return min(1.0, self.duration_hours / self.active_hours)


@dataclass
class AllocationIntegrator:
    """Time-weighted integrals of allocated vs provisioned resources.

    ``accumulate`` is called with the current cluster aggregates before
    every state change; ratios are integrals of allocated over integrals
    of capacity (per resource), matching "average resource allocation".
    """

    allocated_integral: dict[str, float] = field(
        default_factory=lambda: {r: 0.0 for r in RESOURCE_NAMES}
    )
    capacity_integral: dict[str, float] = field(
        default_factory=lambda: {r: 0.0 for r in RESOURCE_NAMES}
    )
    task_instance_integral: float = 0.0
    instance_time_integral: float = 0.0

    def accumulate(
        self,
        dt_s: float,
        allocated: Mapping[str, float],
        capacity: Mapping[str, float],
        num_tasks_assigned: int,
        num_instances: int,
    ) -> None:
        if dt_s <= 0:
            return
        for r in RESOURCE_NAMES:
            self.allocated_integral[r] += allocated[r] * dt_s
            self.capacity_integral[r] += capacity[r] * dt_s
        self.task_instance_integral += num_tasks_assigned * dt_s
        self.instance_time_integral += num_instances * dt_s

    def accumulate_totals(self, dt_s: float, totals: "ClusterAccounting") -> None:
        """Accumulate from incrementally maintained cluster aggregates.

        Same arithmetic as :meth:`accumulate`; takes the running totals a
        :class:`~repro.sim.accounting.ClusterAccounting` maintains so the
        simulator's per-event accounting stays O(delta).
        """
        self.accumulate(
            dt_s,
            totals.allocated,
            totals.capacity,
            totals.num_tasks,
            totals.num_instances,
        )

    def allocation_ratios(self) -> dict[str, float]:
        return {
            r: (
                self.allocated_integral[r] / self.capacity_integral[r]
                if self.capacity_integral[r] > 0
                else 0.0
            )
            for r in RESOURCE_NAMES
        }

    def tasks_per_instance(self) -> float:
        if self.instance_time_integral <= 0:
            return 0.0
        return self.task_instance_integral / self.instance_time_integral


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated run."""

    scheduler_name: str
    trace_name: str
    total_cost: float
    jobs: list[JobOutcome]
    instances_launched: int
    migrations: int
    placements: int
    uptimes_hours: list[float]
    allocation: dict[str, float]
    tasks_per_instance: float
    makespan_hours: float
    full_adoption_fraction: float | None = None
    scheduling_rounds: int = 0
    preemptions: int = 0
    #: Per-job SLO records (deadline-bearing jobs only, in finish order —
    #: the order the O(delta) totals accumulated in, so
    #: :func:`~repro.sim.accounting.naive_deadline_totals` reproduces the
    #: aggregates bit for bit)
    #: plus the aggregates the paper-style tables report.  Legacy traces
    #: without deadlines leave all three at their defaults, and the
    #: pickled state then omits them entirely (see ``__getstate__``), so
    #: pre-deadline results stay byte-identical — the golden digest
    #: matrix pins this.
    deadline_outcomes: tuple[DeadlineOutcome, ...] = ()
    deadline_miss_count: int = 0
    deadline_total_lateness_s: float = 0.0
    #: Reliability records (failure injection, ROADMAP open item 5):
    #: per-event failure records in dispatch order, per-job outage spans
    #: in recovery order, and the O(1)-accumulated totals
    #: (:func:`~repro.sim.accounting.naive_failure_totals` re-derives
    #: them bit for bit).  All defaults with :class:`FailureConfig`
    #: disabled, and then omitted from the pickled state like the
    #: deadline fields — the golden digest matrices pin this.
    failure_outcomes: tuple[FailureOutcome, ...] = ()
    repair_outcomes: tuple[RepairOutcome, ...] = ()
    task_restarts: int = 0
    work_lost_h: float = 0.0
    #: Spot-market accounting (all zero — and omitted from the pickle —
    #: without an active :class:`~repro.cloud.market.MarketConfig`):
    #: effective pool price moves, over-capacity launches, and burstable
    #: credit exhaustions observed during the run.
    price_changes: int = 0
    pool_exhaustions: int = 0
    credit_exhaustions: int = 0

    # ------------------------------------------------------------------
    # Byte-identity of legacy results across the field additions
    # ------------------------------------------------------------------
    #: Fields introduced by the deadline-SLO subsystem, with their
    #: legacy-default values.  Any of them at its default is dropped from
    #: the pickled state so no-deadline results serialize exactly as
    #: before the fields existed.
    _DEADLINE_FIELD_DEFAULTS = {
        "deadline_outcomes": (),
        "deadline_miss_count": 0,
        "deadline_total_lateness_s": 0.0,
    }
    #: Same contract for the failure-injection fields.
    _FAILURE_FIELD_DEFAULTS = {
        "failure_outcomes": (),
        "repair_outcomes": (),
        "task_restarts": 0,
        "work_lost_h": 0.0,
    }
    #: Same contract for the spot-market fields.
    _MARKET_FIELD_DEFAULTS = {
        "price_changes": 0,
        "pool_exhaustions": 0,
        "credit_exhaustions": 0,
    }
    _OMITTED_FIELD_DEFAULTS = {
        **_DEADLINE_FIELD_DEFAULTS,
        **_FAILURE_FIELD_DEFAULTS,
        **_MARKET_FIELD_DEFAULTS,
    }

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for name, default in self._OMITTED_FIELD_DEFAULTS.items():
            if name in state and state[name] == default:
                del state[name]
        return state

    def __setstate__(self, state: dict) -> None:
        for name, default in self._OMITTED_FIELD_DEFAULTS.items():
            state.setdefault(name, default)
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_tasks(self) -> int:
        return sum(j.num_tasks for j in self.jobs)

    def mean_jct_hours(self) -> float:
        return mean(j.jct_hours for j in self.jobs) if self.jobs else 0.0

    def mean_idle_hours(self) -> float:
        return mean(j.idle_hours for j in self.jobs) if self.jobs else 0.0

    def mean_normalized_tput(self) -> float:
        return mean(j.normalized_tput for j in self.jobs) if self.jobs else 1.0

    def migrations_per_task(self) -> float:
        return self.migrations / self.num_tasks if self.num_tasks else 0.0

    # ------------------------------------------------------------------
    # Deadline SLO statistics
    # ------------------------------------------------------------------
    @property
    def deadline_job_count(self) -> int:
        """Number of deadline-bearing jobs in this run."""
        return len(self.deadline_outcomes)

    @property
    def deadline_met_count(self) -> int:
        return self.deadline_job_count - self.deadline_miss_count

    @property
    def deadline_attainment(self) -> float:
        """Fraction of deadline-bearing jobs that met their SLO.

        1.0 when the trace carries no deadlines (an empty SLO is
        vacuously attained), so legacy tables can print the column
        without special-casing.
        """
        count = self.deadline_job_count
        if count == 0:
            return 1.0
        return self.deadline_met_count / count

    def mean_lateness_s(self) -> float:
        """Mean lateness over the *missed* jobs (0.0 without misses)."""
        if self.deadline_miss_count == 0:
            return 0.0
        return self.deadline_total_lateness_s / self.deadline_miss_count

    # ------------------------------------------------------------------
    # Reliability statistics (failure injection)
    # ------------------------------------------------------------------
    @property
    def instance_failures(self) -> int:
        """Injected instance failures (crashes + domain-shock kills)."""
        return len(self.failure_outcomes)

    @property
    def total_work_hours(self) -> float:
        """Useful standalone work delivered (sum of job durations)."""
        return sum(j.duration_hours for j in self.jobs)

    @property
    def goodput_fraction(self) -> float:
        """Useful work over gross work executed.

        Gross work is useful work plus the progress rolled back by
        failures (re-executed after restart), so this is 1.0 in a
        fault-free run and degrades as crashes burn iterations.
        """
        useful = self.total_work_hours
        gross = useful + self.work_lost_h
        if gross <= 0:
            return 1.0
        return useful / gross

    def mean_mttr_s(self) -> float:
        """Mean time-to-recovery over job outages (0.0 without any)."""
        if not self.repair_outcomes:
            return 0.0
        return mean(o.repair_s for o in self.repair_outcomes)

    def restarts_per_job(self) -> float:
        return self.task_restarts / self.num_jobs if self.num_jobs else 0.0

    def uptime_cdf(self, points: int = 50) -> tuple[np.ndarray, np.ndarray]:
        """(uptime_hours, cumulative_fraction) pairs for the Figure 3 CDF."""
        if not self.uptimes_hours:
            return np.array([]), np.array([])
        xs = np.sort(np.array(self.uptimes_hours))
        ys = np.arange(1, len(xs) + 1) / len(xs)
        if len(xs) > points:
            idx = np.linspace(0, len(xs) - 1, points).astype(int)
            xs, ys = xs[idx], ys[idx]
        return xs, ys

    def normalized_cost(self, baseline: "SimulationResult") -> float:
        """Cost relative to a baseline run (the paper's Norm. Cost)."""
        if baseline.total_cost <= 0:
            return float("inf")
        return self.total_cost / baseline.total_cost

    def summary_row(self) -> dict[str, float | str]:
        """Flat dict for table rendering."""
        return {
            "scheduler": self.scheduler_name,
            "total_cost": round(self.total_cost, 2),
            "instances": self.instances_launched,
            "migrations_per_task": round(self.migrations_per_task(), 3),
            "tasks_per_instance": round(self.tasks_per_instance, 2),
            "gpu_alloc": round(self.allocation["gpus"], 3),
            "cpu_alloc": round(self.allocation["cpus"], 3),
            "ram_alloc": round(self.allocation["ram_gb"], 3),
            "norm_tput": round(self.mean_normalized_tput(), 3),
            "jct_hours": round(self.mean_jct_hours(), 2),
            "idle_hours": round(self.mean_idle_hours(), 3),
        }


def normalize_costs(
    results: Sequence[SimulationResult], baseline_name: str = "No-Packing"
) -> dict[str, float]:
    """Normalized total costs relative to the named baseline's run."""
    baseline = next(
        (r for r in results if r.scheduler_name == baseline_name), None
    )
    if baseline is None:
        raise ValueError(f"no result named {baseline_name!r} to normalize against")
    return {r.scheduler_name: r.normalized_cost(baseline) for r in results}
