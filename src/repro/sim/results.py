"""Content-addressed, persistent cache of scenario outcomes.

A :class:`ResultStore` maps ``(code token, scenario fingerprint)`` to a
pickled :class:`~repro.sim.batch.ScenarioOutcome`, so interrupted sweeps
resume where they stopped and unchanged scenarios are never re-simulated.

Keys:

* **Scenario fingerprint** — :meth:`repro.sim.batch.Scenario.fingerprint`,
  a stable canonical-JSON digest of every result-affecting field (the
  display ``name`` is excluded; see :mod:`repro.sim.fingerprint` for the
  stability contract).
* **Code token** — a digest of every ``repro`` source file, i.e. exactly
  the code git tracks for the package.  Any committed code change mints
  a new token, invalidating every cached outcome at once: simulation
  results are a function of (scenario, code), and only byte-identical
  replays may be served from cache.

*Where* entries live is a pluggable
:class:`~repro.sim.fabric.backends.StoreBackend`.  The default is the
classic directory layout (safe to delete at any time)::

    <root>/<code-token[:16]>/<fingerprint>.pkl

via :class:`~repro.sim.fabric.backends.LocalFSBackend`; the fabric's
:class:`~repro.sim.fabric.backends.KVBackend` (in-memory or HTTP object
store) and :class:`~repro.sim.fabric.backends.TieredStore`
(read-through local cache over a shared remote tier) plug in through
the ``backend`` argument without changing any store semantics.

Entries are written atomically (the backend's contract) so a killed
sweep never leaves a truncated entry behind; writes are put-if-absent
(first-write-wins — racing writers of a content-addressed key hold
byte-identical payloads); and unreadable/corrupted entries are treated
as misses, never as errors, then repaired on the next put.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.sim.fabric.backends import LocalFSBackend, StoreBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batch import Scenario, ScenarioOutcome

__all__ = ["CacheStats", "ResultStore", "code_token"]


@functools.lru_cache(maxsize=1)
def code_token() -> str:
    """Digest of the installed ``repro`` package's Python sources.

    Hashes the sorted relative paths and contents of every ``*.py`` file
    under the package directory — the git-visible code — so the token
    changes exactly when committed package code changes.  Caches (pyc),
    editor droppings, and non-Python files are ignored.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(root.rglob("*.py")):
        digest.update(source.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Running counters of one store's traffic.

    ``hits``/``misses`` count lookups; ``stores`` counts entries this
    store actually wrote (a put that lost a first-write-wins race to an
    existing valid entry does not count); ``uncacheable`` counts
    scenarios whose fingerprint could not be computed (e.g. live RNG
    state) and which therefore bypassed the cache entirely.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
        }

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            stores=self.stores - other.stores,
            uncacheable=self.uncacheable - other.uncacheable,
        )

    def copy(self) -> "CacheStats":
        return CacheStats(**self.as_dict())


#: Pickle format marker; bump when the entry layout changes so old
#: stores read as misses instead of unpickling garbage.
_ENTRY_VERSION = 1


class ResultStore:
    """Content-addressed cache of scenario outcomes over a backend.

    Args:
        root: Cache directory for the default filesystem backend
            (created on first write).  May be ``None`` when an explicit
            ``backend`` is given.
        token: Override the code token — tests use this to simulate a
            code change; production callers leave the default.
        backend: Storage backend; ``None`` means
            ``LocalFSBackend(root)`` (the classic layout).
    """

    def __init__(
        self,
        root: str | os.PathLike[str] | None = None,
        token: str | None = None,
        backend: StoreBackend | None = None,
    ) -> None:
        if backend is None:
            if root is None:
                raise ValueError("ResultStore needs a root or a backend")
            backend = LocalFSBackend(root)
        self.root = Path(root) if root is not None else None
        self.backend = backend
        self.token = token if token is not None else code_token()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(self, fp: str) -> str:
        """The backend key of fingerprint ``fp`` under this code token."""
        return f"{self.token[:16]}/{fp}"

    def key_for_scenario(
        self, scenario: "Scenario", count_uncacheable: bool = True
    ) -> str | None:
        """``scenario``'s backend key, or None when unfingerprintable."""
        fp = self._fingerprint(scenario, count_uncacheable=count_uncacheable)
        return None if fp is None else self.key_for(fp)

    def _fingerprint(
        self, scenario: "Scenario", count_uncacheable: bool = True
    ) -> str | None:
        from repro.sim.fingerprint import FingerprintError

        try:
            return scenario.fingerprint()
        except FingerprintError:
            # `uncacheable` counts lookups only; the paired put() of a
            # run_batch miss must not count the same scenario twice.
            if count_uncacheable:
                self.stats.uncacheable += 1
            return None

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, scenario: "Scenario") -> "ScenarioOutcome | None":
        """The cached outcome for ``scenario``, or None.

        A hit returns the stored outcome with its ``scenario`` field
        replaced by the *requested* scenario (fingerprints exclude the
        display name, so the stored label may differ); the
        :class:`~repro.sim.metrics.SimulationResult` inside is the
        byte-identical pickled original.  Unfingerprintable scenarios
        and unreadable/corrupted/mismatched entries all count and
        behave as misses.
        """
        fp = self._fingerprint(scenario)
        if fp is None:
            return None
        entry = self._load_entry(self.key_for(fp))
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        outcome: ScenarioOutcome = entry["outcome"]
        return replace(outcome, scenario=scenario)

    def probe(self, scenario: "Scenario") -> str:
        """Cheap cache-status check: ``"hit"``, ``"miss"`` or ``"uncacheable"``.

        Answers by fingerprint + entry existence without reading or
        unpickling the entry, so dry runs over large grids stay fast;
        counts into :attr:`stats` exactly like :meth:`get` would.  (A
        corrupted entry probes as a hit but will still re-simulate at
        run time — :meth:`get` treats it as a miss.)
        """
        fp = self._fingerprint(scenario)
        if fp is None:
            return "uncacheable"
        if self.backend.contains(self.key_for(fp)):
            self.stats.hits += 1
            return "hit"
        self.stats.misses += 1
        return "miss"

    def put(self, scenario: "Scenario", outcome: "ScenarioOutcome") -> bool:
        """Store ``outcome`` under ``scenario``'s fingerprint.

        Returns True if this call wrote the entry; False for
        uncacheable scenarios or when a valid entry already existed
        (first-write-wins — the existing bytes are byte-identical by
        the determinism contract, so they are left untouched).  An
        existing entry that no longer decodes is repaired in place.
        """
        fp = self._fingerprint(scenario, count_uncacheable=False)
        if fp is None:
            return False
        key = self.key_for(fp)
        payload = pickle.dumps(
            {"version": _ENTRY_VERSION, "fingerprint": fp, "outcome": outcome},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        stored = self.backend.put_if_absent(key, payload)
        if not stored and self._load_entry(key) is None:
            # The occupant is corrupt/truncated: replace it.
            self.backend.replace(key, payload)
            stored = True
        if stored:
            self.stats.stores += 1
        return stored

    # ------------------------------------------------------------------
    # Key-level access (the fabric's interface; no stats counting)
    # ------------------------------------------------------------------
    def has_key(self, key: str) -> bool:
        """Whether ``key`` has an entry (no stats, no decode)."""
        return self.backend.contains(key)

    def fetch_key(self, key: str) -> "ScenarioOutcome | None":
        """Decode the outcome stored under a backend key (no stats).

        The fabric driver resolves completed work items by key after
        already having counted the scenario's miss, so this fetch stays
        out of the hit/miss accounting.
        """
        entry = self._load_entry(key)
        return None if entry is None else entry["outcome"]

    def _load_entry(self, key: str) -> dict[str, Any] | None:
        raw = self.backend.get(key)
        if raw is None:
            return None
        try:
            entry = pickle.loads(raw)
        except Exception:
            return None  # truncated/corrupted entry: a miss, never fatal
        if (
            not isinstance(entry, dict)
            or entry.get("version") != _ENTRY_VERSION
            or "outcome" not in entry
        ):
            return None
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _entries(self) -> Iterator[str]:
        yield from self.backend.keys(prefix=f"{self.token[:16]}/")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = (
            str(self.root) if self.root is not None else repr(self.backend)
        )
        return f"ResultStore({where!r}, token={self.token[:16]})"
