"""Content-addressed, persistent cache of scenario outcomes.

A :class:`ResultStore` maps ``(code token, scenario fingerprint)`` to a
pickled :class:`~repro.sim.batch.ScenarioOutcome`, so interrupted sweeps
resume where they stopped and unchanged scenarios are never re-simulated.

Keys:

* **Scenario fingerprint** — :meth:`repro.sim.batch.Scenario.fingerprint`,
  a stable canonical-JSON digest of every result-affecting field (the
  display ``name`` is excluded; see :mod:`repro.sim.fingerprint` for the
  stability contract).
* **Code token** — a digest of every ``repro`` source file, i.e. exactly
  the code git tracks for the package.  Any committed code change mints
  a new token, invalidating every cached outcome at once: simulation
  results are a function of (scenario, code), and only byte-identical
  replays may be served from cache.

Layout under the store root (safe to delete at any time)::

    <root>/<code-token[:16]>/<fingerprint>.pkl

Entries are written atomically (temp file + ``os.replace``) so a killed
sweep never leaves a truncated entry behind, and unreadable/corrupted
entries are treated as misses, never as errors.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batch import Scenario, ScenarioOutcome

__all__ = ["CacheStats", "ResultStore", "code_token"]


@functools.lru_cache(maxsize=1)
def code_token() -> str:
    """Digest of the installed ``repro`` package's Python sources.

    Hashes the sorted relative paths and contents of every ``*.py`` file
    under the package directory — the git-visible code — so the token
    changes exactly when committed package code changes.  Caches (pyc),
    editor droppings, and non-Python files are ignored.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(root.rglob("*.py")):
        digest.update(source.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Running counters of one store's traffic.

    ``hits``/``misses`` count lookups; ``stores`` counts successful
    writes; ``uncacheable`` counts scenarios whose fingerprint could not
    be computed (e.g. live RNG state) and which therefore bypassed the
    cache entirely.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    uncacheable: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
        }

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            stores=self.stores - other.stores,
            uncacheable=self.uncacheable - other.uncacheable,
        )

    def copy(self) -> "CacheStats":
        return CacheStats(**self.as_dict())


#: Pickle format marker; bump when the entry layout changes so old
#: stores read as misses instead of unpickling garbage.
_ENTRY_VERSION = 1


class ResultStore:
    """Filesystem-backed content-addressed cache of scenario outcomes.

    Args:
        root: Cache directory (created on first write).
        token: Override the code token — tests use this to simulate a
            code change; production callers leave the default.
    """

    def __init__(
        self, root: str | os.PathLike[str], token: str | None = None
    ) -> None:
        self.root = Path(root)
        self.token = token if token is not None else code_token()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _entry_path(self, fp: str) -> Path:
        return self.root / self.token[:16] / f"{fp}.pkl"

    def _fingerprint(
        self, scenario: "Scenario", count_uncacheable: bool = True
    ) -> str | None:
        from repro.sim.fingerprint import FingerprintError

        try:
            return scenario.fingerprint()
        except FingerprintError:
            # `uncacheable` counts lookups only; the paired put() of a
            # run_batch miss must not count the same scenario twice.
            if count_uncacheable:
                self.stats.uncacheable += 1
            return None

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, scenario: "Scenario") -> "ScenarioOutcome | None":
        """The cached outcome for ``scenario``, or None.

        A hit returns the stored outcome with its ``scenario`` field
        replaced by the *requested* scenario (fingerprints exclude the
        display name, so the stored label may differ); the
        :class:`~repro.sim.metrics.SimulationResult` inside is the
        byte-identical pickled original.  Unfingerprintable scenarios
        and unreadable/corrupted/mismatched entries all count and
        behave as misses.
        """
        fp = self._fingerprint(scenario)
        if fp is None:
            return None
        entry = self._load_entry(self._entry_path(fp))
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        outcome: ScenarioOutcome = entry["outcome"]
        return replace(outcome, scenario=scenario)

    def probe(self, scenario: "Scenario") -> str:
        """Cheap cache-status check: ``"hit"``, ``"miss"`` or ``"uncacheable"``.

        Answers by fingerprint + entry existence without reading or
        unpickling the entry, so dry runs over large grids stay fast;
        counts into :attr:`stats` exactly like :meth:`get` would.  (A
        corrupted entry probes as a hit but will still re-simulate at
        run time — :meth:`get` treats it as a miss.)
        """
        fp = self._fingerprint(scenario)
        if fp is None:
            return "uncacheable"
        if self._entry_path(fp).is_file():
            self.stats.hits += 1
            return "hit"
        self.stats.misses += 1
        return "miss"

    def put(self, scenario: "Scenario", outcome: "ScenarioOutcome") -> bool:
        """Store ``outcome`` under ``scenario``'s fingerprint.

        Returns True if the entry was written; False for uncacheable
        scenarios.  Writes are atomic (temp file + rename), so readers
        never observe partial entries.
        """
        fp = self._fingerprint(scenario, count_uncacheable=False)
        if fp is None:
            return False
        path = self._entry_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {"version": _ENTRY_VERSION, "fingerprint": fp, "outcome": outcome},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return True

    def _load_entry(self, path: Path) -> dict[str, Any] | None:
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            entry = pickle.loads(raw)
        except Exception:
            return None  # truncated/corrupted entry: a miss, never fatal
        if (
            not isinstance(entry, dict)
            or entry.get("version") != _ENTRY_VERSION
            or "outcome" not in entry
        ):
            return None
        return entry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def _entries(self) -> Iterator[Path]:
        token_dir = self.root / self.token[:16]
        if not token_dir.is_dir():
            return
        yield from token_dir.glob("*.pkl")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore({str(self.root)!r}, token={self.token[:16]})"
