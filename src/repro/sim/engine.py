"""Discrete-event engine.

A minimal, allocation-light event queue: events are (time, priority,
sequence, kind, payload) tuples ordered by time, then priority (lower
first), then insertion order.  Stale events are handled by the payload's
owner via version counters — the engine itself never cancels.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Iterable


class EventKind(IntEnum):
    """Event kinds, ordered by same-timestamp processing priority.

    Arrivals are seen before the round so the scheduler can place them;
    task readiness and job completion precede the round so it observes
    up-to-date state; terminations run after migrations have detached.
    """

    JOB_ARRIVAL = 0
    TASK_READY = 1
    JOB_FINISH = 2
    INSTANCE_PREEMPTION = 3
    INSTANCE_TERMINATE = 4
    #: Spot-market advance warning (payload: (instance_id, eviction
    #: time)); sorts before the round so a same-timestamp round already
    #: observes the notice.
    EVICTION_NOTICE = 5
    #: Abrupt instance crash (payload: ``("instance", instance_id)`` for
    #: independent crashes, ``("domain", domain_id)`` for correlated
    #: failure-domain shocks).  Unlike spot preemption there is no
    #: graceful checkpoint: progress rolls back to the last completed
    #: checkpoint.  Sorts before the round (EVICTION_NOTICE precedent)
    #: so a same-timestamp round already observes the failure; sorts
    #: after JOB_FINISH so completions beat same-timestamp crashes.
    INSTANCE_FAILURE = 6
    #: A straggler fault begins: the instance's effective throughput is
    #: multiplied by a slowdown factor (payload: (instance_id, factor)).
    SLOWDOWN_START = 7
    #: The straggler fault ends and the instance recovers full speed
    #: (payload: instance_id).
    SLOWDOWN_END = 8
    #: A market pool's price segment boundary (payload: pool index).
    #: Self-scheduling like the domain-shock stream; sorts before the
    #: round so a same-timestamp round already observes the new price,
    #: and after terminations so a closing instance is billed at the
    #: rate that was live while it ran.
    PRICE_CHANGE = 9
    #: A burstable instance exhausted its CPU credits and drops to its
    #: baseline throughput (payload: instance_id).  Deterministic from
    #: the launch timestamp (see :class:`repro.cloud.market.CreditModel`).
    CREDIT_EXHAUSTED = 10
    SCHEDULING_ROUND = 11


@dataclass(frozen=True, slots=True)
class Event:
    time_s: float
    kind: EventKind
    payload: Any = None


@dataclass
class EventQueue:
    """Priority queue of simulation events."""

    _heap: list[tuple[float, int, int, Event]] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count)

    def push(self, event: Event) -> None:
        if event.time_s < 0:
            raise ValueError(f"event time must be >= 0, got {event.time_s}")
        heapq.heappush(
            self._heap,
            (event.time_s, int(event.kind), next(self._counter), event),
        )

    def push_all(self, events: Iterable[Event]) -> None:
        """Bulk-push; heapifies once when the queue is empty (O(n) vs
        O(n log n) sequential pushes).  Pop order is unaffected: entries
        are totally ordered by (time, kind, insertion counter).
        """
        if self._heap:
            for event in events:
                self.push(event)
            return
        counter = self._counter
        entries = [
            (event.time_s, int(event.kind), next(counter), event)
            for event in events
        ]
        # Validate before mutating, preserving push()'s contract that a
        # rejected event leaves the queue untouched.
        for time_s, _, _, _ in entries:
            if time_s < 0:
                raise ValueError(f"event time must be >= 0, got {time_s}")
        heapq.heapify(entries)
        self._heap = entries

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
