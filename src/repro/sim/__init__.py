"""Discrete-event simulation: engine, cluster simulator, metrics, batching."""

from repro.sim.batch import (
    Scenario,
    ScenarioOutcome,
    TraceSpec,
    bench_workers,
    parallel_map,
    register_trace_builder,
    run_batch,
    run_grid,
    run_scenario,
    trace_builder_names,
)
from repro.sim.engine import Event, EventKind, EventQueue
from repro.sim.metrics import (
    AllocationIntegrator,
    FailureOutcome,
    JobOutcome,
    RepairOutcome,
    SimulationResult,
    normalize_costs,
)
from repro.sim.simulator import (
    DEFAULT_PERIOD_S,
    ClusterSimulator,
    FailureConfig,
    RetryPolicy,
    SimulationError,
    SpotConfig,
    run_simulation,
)

__all__ = [
    "Scenario",
    "ScenarioOutcome",
    "TraceSpec",
    "bench_workers",
    "parallel_map",
    "register_trace_builder",
    "run_batch",
    "run_grid",
    "run_scenario",
    "trace_builder_names",
    "Event",
    "EventKind",
    "EventQueue",
    "AllocationIntegrator",
    "FailureOutcome",
    "JobOutcome",
    "RepairOutcome",
    "SimulationResult",
    "normalize_costs",
    "DEFAULT_PERIOD_S",
    "ClusterSimulator",
    "FailureConfig",
    "RetryPolicy",
    "SimulationError",
    "SpotConfig",
    "run_simulation",
]
