"""Discrete-event simulation: engine, cluster simulator, metrics."""

from repro.sim.engine import Event, EventKind, EventQueue
from repro.sim.metrics import (
    AllocationIntegrator,
    JobOutcome,
    SimulationResult,
    normalize_costs,
)
from repro.sim.simulator import (
    DEFAULT_PERIOD_S,
    ClusterSimulator,
    SimulationError,
    SpotConfig,
    run_simulation,
)

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "AllocationIntegrator",
    "JobOutcome",
    "SimulationResult",
    "normalize_costs",
    "DEFAULT_PERIOD_S",
    "ClusterSimulator",
    "SimulationError",
    "SpotConfig",
    "run_simulation",
]
