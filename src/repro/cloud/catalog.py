"""AWS EC2 instance catalog used in the paper's evaluation (§6.1).

The paper provisions from 21 instance types across 3 families:

* **P3** — GPU instances (NVIDIA V100),
* **C7i** — compute-optimized,
* **R7i** — memory-optimized.

Capacities are the published EC2 specs; prices are us-east-1 on-demand
$/hr.  The paper's worked example (Table 3) uses rounded versions of
``p3.8xlarge`` ($12/hr ≈ $12.24) and ``p3.2xlarge`` ($3/hr ≈ $3.06), so the
catalog reproduces the same relative price structure the algorithms rely on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.instance import InstanceType
from repro.cluster.resources import ResourceVector
from repro.cluster.task import Task

#: (name, family, gpus, vcpus, ram_gb, $/hr) — 3 P3 + 9 C7i + 9 R7i = 21.
_EC2_SPECS: tuple[tuple[str, str, float, float, float, float], ...] = (
    # P3 (V100 GPUs)
    ("p3.2xlarge", "p3", 1, 8, 61, 3.06),
    ("p3.8xlarge", "p3", 4, 32, 244, 12.24),
    ("p3.16xlarge", "p3", 8, 64, 488, 24.48),
    # C7i (compute optimized)
    ("c7i.large", "c7i", 0, 2, 4, 0.0893),
    ("c7i.xlarge", "c7i", 0, 4, 8, 0.1785),
    ("c7i.2xlarge", "c7i", 0, 8, 16, 0.357),
    ("c7i.4xlarge", "c7i", 0, 16, 32, 0.714),
    ("c7i.8xlarge", "c7i", 0, 32, 64, 1.428),
    ("c7i.12xlarge", "c7i", 0, 48, 96, 2.142),
    ("c7i.16xlarge", "c7i", 0, 64, 128, 2.856),
    ("c7i.24xlarge", "c7i", 0, 96, 192, 4.284),
    ("c7i.48xlarge", "c7i", 0, 192, 384, 8.568),
    # R7i (memory optimized)
    ("r7i.large", "r7i", 0, 2, 16, 0.1323),
    ("r7i.xlarge", "r7i", 0, 4, 32, 0.2646),
    ("r7i.2xlarge", "r7i", 0, 8, 64, 0.5292),
    ("r7i.4xlarge", "r7i", 0, 16, 128, 1.0584),
    ("r7i.8xlarge", "r7i", 0, 32, 256, 2.1168),
    ("r7i.12xlarge", "r7i", 0, 48, 384, 3.1752),
    ("r7i.16xlarge", "r7i", 0, 64, 512, 4.2336),
    ("r7i.24xlarge", "r7i", 0, 96, 768, 6.3504),
    ("r7i.48xlarge", "r7i", 0, 192, 1536, 12.7008),
)


def ec2_catalog() -> list[InstanceType]:
    """The 21 EC2 instance types used throughout the evaluation."""
    return [
        InstanceType(
            name=name,
            family=family,
            capacity=ResourceVector(float(g), float(c), float(m)),
            hourly_cost=price,
        )
        for name, family, g, c, m, price in _EC2_SPECS
    ]


def paper_example_catalog() -> list[InstanceType]:
    """The four instance types of the paper's worked example (Table 3a)."""
    return [
        InstanceType("it1", "gpu", ResourceVector(4, 16, 244), 12.0),
        InstanceType("it2", "gpu", ResourceVector(1, 4, 61), 3.0),
        InstanceType("it3", "cpu", ResourceVector(0, 8, 32), 0.8),
        InstanceType("it4", "cpu", ResourceVector(0, 4, 16), 0.4),
    ]


def catalog_by_name(catalog: Iterable[InstanceType]) -> dict[str, InstanceType]:
    return {it.name: it for it in catalog}


def sorted_by_cost_desc(catalog: Iterable[InstanceType]) -> list[InstanceType]:
    """Instance types in descending hourly cost — Algorithm 1's iteration order."""
    return sorted(catalog, key=lambda it: (-it.hourly_cost, it.name))


def feasible_types(task: Task, catalog: Iterable[InstanceType]) -> list[InstanceType]:
    """Instance types whose capacity fits the task's family-specific demand."""
    return [
        it
        for it in catalog
        if task.demand_for(it.family).fits_within(it.capacity)
    ]


def cheapest_feasible_type(
    task: Task, catalog: Sequence[InstanceType]
) -> InstanceType | None:
    """The reservation-price instance type of a task (§4.2), or None if none fits."""
    feasible = feasible_types(task, catalog)
    if not feasible:
        return None
    return min(feasible, key=lambda it: (it.hourly_cost, it.name))
