"""Simulated cloud platform: EC2 catalog, delays, billing, provider."""

from repro.cloud.catalog import (
    catalog_by_name,
    cheapest_feasible_type,
    ec2_catalog,
    feasible_types,
    paper_example_catalog,
    sorted_by_cost_desc,
)
from repro.cloud.delays import DelayModel
from repro.cloud.pricing import BillingLedger, BillingRecord
from repro.cloud.provider import (
    CapacityError,
    LaunchReceipt,
    SimulatedCloud,
)

__all__ = [
    "catalog_by_name",
    "cheapest_feasible_type",
    "ec2_catalog",
    "feasible_types",
    "paper_example_catalog",
    "sorted_by_cost_desc",
    "DelayModel",
    "BillingLedger",
    "BillingRecord",
    "CapacityError",
    "LaunchReceipt",
    "SimulatedCloud",
]
