"""Billing and cost accounting.

Instances accrue cost from the moment the launch request is issued until
termination, at per-second granularity (AWS Linux on-demand billing).  This
makes acquisition/setup delays *paid but idle* time, which is exactly the
overhead §2.3 argues a scheduler must weigh against provisioning savings.

:class:`BillingLedger` tracks per-instance uptime and cost, and exposes the
aggregate statistics the evaluation reports: total cost, instances
launched, and the instance-uptime distribution (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.instance import InstanceType


@dataclass
class BillingRecord:
    """Lifetime and cost of one provisioned instance.

    ``hourly_rate`` defaults to the type's on-demand price; spot launches
    record a discounted rate instead.

    Mid-life price changes (an attached spot market re-rating live
    instances) split the record into closed rate segments *in place*:
    :meth:`change_rate` folds the finished segment into ``accrued_cost``
    and restarts the open segment at the new rate, so there is still
    exactly one record per instance (``instances_launched`` and the
    uptime distribution are untouched) and both :meth:`change_rate` and
    :meth:`cost` stay O(1).  ``segment_start_s is None`` means the
    record was never re-rated — that path's cost arithmetic is the
    pre-market expression, bit for bit.
    """

    instance_id: str
    instance_type: InstanceType
    launch_time_s: float
    termination_time_s: float | None = None
    hourly_rate: float | None = None
    #: Start of the open rate segment; None until the first re-rate.
    segment_start_s: float | None = None
    #: Dollar cost of all closed rate segments.
    accrued_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.hourly_rate is None:
            self.hourly_rate = self.instance_type.hourly_cost

    def uptime_s(self, now_s: float) -> float:
        end = self.termination_time_s if self.termination_time_s is not None else now_s
        return max(0.0, end - self.launch_time_s)

    def change_rate(self, time_s: float, hourly_rate: float) -> None:
        """Close the current rate segment at ``time_s``; bill the rest at
        ``hourly_rate``."""
        if self.termination_time_s is not None:
            raise ValueError(
                f"instance {self.instance_id} already terminated; cannot re-rate"
            )
        start = (
            self.segment_start_s
            if self.segment_start_s is not None
            else self.launch_time_s
        )
        if time_s < start:
            raise ValueError(
                f"re-rate time {time_s} precedes open segment start {start}"
            )
        self.accrued_cost += (time_s - start) * self.hourly_rate / 3600.0
        self.segment_start_s = time_s
        self.hourly_rate = hourly_rate

    def cost(self, now_s: float) -> float:
        if self.segment_start_s is None:
            return self.uptime_s(now_s) * self.hourly_rate / 3600.0
        end = self.termination_time_s if self.termination_time_s is not None else now_s
        open_s = max(0.0, end - self.segment_start_s)
        return self.accrued_cost + open_s * self.hourly_rate / 3600.0

    @property
    def is_active(self) -> bool:
        return self.termination_time_s is None


@dataclass
class BillingLedger:
    """Tracks launches, terminations, uptimes, and dollar cost."""

    records: dict[str, BillingRecord] = field(default_factory=dict)

    def on_launch(
        self,
        instance_id: str,
        instance_type: InstanceType,
        time_s: float,
        hourly_rate: float | None = None,
    ) -> None:
        if instance_id in self.records:
            raise ValueError(f"instance {instance_id} already launched")
        self.records[instance_id] = BillingRecord(
            instance_id=instance_id,
            instance_type=instance_type,
            launch_time_s=time_s,
            hourly_rate=hourly_rate,
        )

    def on_terminate(self, instance_id: str, time_s: float) -> None:
        record = self.records[instance_id]
        if record.termination_time_s is not None:
            raise ValueError(f"instance {instance_id} already terminated")
        if time_s < record.launch_time_s:
            raise ValueError(
                f"termination time {time_s} precedes launch {record.launch_time_s}"
            )
        record.termination_time_s = time_s

    def change_rate(self, instance_id: str, time_s: float, hourly_rate: float) -> None:
        """Re-rate a live instance from ``time_s`` on (O(1) per change)."""
        self.records[instance_id].change_rate(time_s, hourly_rate)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_cost(self, now_s: float) -> float:
        """Dollar cost accrued by all instances up to ``now_s``."""
        return sum(r.cost(now_s) for r in self.records.values())

    def instances_launched(self) -> int:
        return len(self.records)

    def active_instance_ids(self) -> list[str]:
        return [iid for iid, r in self.records.items() if r.is_active]

    def active_hourly_cost(self) -> float:
        """Instantaneous $/hr burn rate of currently active instances."""
        return sum(r.hourly_rate or 0.0 for r in self.records.values() if r.is_active)

    def uptimes_hours(self, now_s: float) -> list[float]:
        """Per-instance uptimes in hours (the Figure 3 distribution)."""
        return [r.uptime_s(now_s) / 3600.0 for r in self.records.values()]

    def cost_by_family(self, now_s: float) -> dict[str, float]:
        """Cost split by instance family — useful for cost-breakdown reports."""
        totals: dict[str, float] = {}
        for r in self.records.values():
            family = r.instance_type.family
            totals[family] = totals.get(family, 0.0) + r.cost(now_s)
        return totals
