"""Reconfiguration delay model (Table 1).

The paper measured four delay components on AWS EC2:

=====================  ===========  =============
Delay type             Range (sec)  Average (sec)
=====================  ===========  =============
Instance acquisition   6 – 83       19
Instance setup         140 – 251    190
Job checkpointing      2 – 30       8
Job launching          1 – 160      47
=====================  ===========  =============

Instance-side delays are properties of the cloud; job-side delays are
properties of the workload (Table 7 lists per-workload checkpoint/launch
delays, which override the defaults here).

The model supports a deterministic mode (means — the default, keeping
simulations reproducible) and a stochastic mode sampling from truncated
normals within the measured ranges (used by the "physical" proxy in the
Table 12 fidelity experiment).  A global ``multiplier`` scales job
migration delays for the Figure 5 sensitivity sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Published measurement ranges and averages, seconds (Table 1).
ACQUISITION_RANGE_S = (6.0, 83.0)
ACQUISITION_MEAN_S = 19.0
SETUP_RANGE_S = (140.0, 251.0)
SETUP_MEAN_S = 190.0
CHECKPOINT_RANGE_S = (2.0, 30.0)
CHECKPOINT_MEAN_S = 8.0
LAUNCH_RANGE_S = (1.0, 160.0)
LAUNCH_MEAN_S = 47.0


def _truncated_normal(
    rng: np.random.Generator, mean: float, lo: float, hi: float
) -> float:
    """Sample a normal centred on the published mean, clipped to the range.

    The standard deviation is a quarter of the range width, matching the
    spread of the published measurements closely enough for a fidelity
    proxy.
    """
    std = (hi - lo) / 4.0
    return float(np.clip(rng.normal(mean, std), lo, hi))


@dataclass
class DelayModel:
    """Samples reconfiguration delays (Table 1).

    Attributes:
        stochastic: If True, sample from truncated normals; otherwise
            return the published means (deterministic).
        migration_multiplier: Scales job-side delays (checkpoint + launch)
            — the x-axis of Figure 5.
        instance_multiplier: Scales instance-side delays (acquisition +
            setup); kept separate so migration sweeps leave instance
            launch costs untouched, as in the paper.
        rng: Random generator for stochastic mode.
    """

    stochastic: bool = False
    migration_multiplier: float = 1.0
    instance_multiplier: float = 1.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __fingerprint__(self) -> dict:
        """Canonical content for the result-cache key.

        A deterministic model is fully described by its multipliers (the
        ``rng`` is never consulted); a stochastic model's behaviour lives
        in mutable RNG state, so it refuses to fingerprint — scenarios
        carrying one are treated as uncacheable by the ResultStore.
        """
        if self.stochastic:
            from repro.sim.fingerprint import FingerprintError

            raise FingerprintError(
                "stochastic DelayModel samples from live RNG state and "
                "cannot be fingerprinted; such scenarios are uncacheable"
            )
        return {
            "stochastic": False,
            "migration_multiplier": self.migration_multiplier,
            "instance_multiplier": self.instance_multiplier,
        }

    # -- instance-side ---------------------------------------------------
    def acquisition_s(self) -> float:
        """Delay between requesting an instance and the cloud granting it."""
        base = (
            _truncated_normal(self.rng, ACQUISITION_MEAN_S, *ACQUISITION_RANGE_S)
            if self.stochastic
            else ACQUISITION_MEAN_S
        )
        return base * self.instance_multiplier

    def setup_s(self) -> float:
        """Delay to boot the instance and start the Eva worker on it."""
        base = (
            _truncated_normal(self.rng, SETUP_MEAN_S, *SETUP_RANGE_S)
            if self.stochastic
            else SETUP_MEAN_S
        )
        return base * self.instance_multiplier

    def instance_ready_s(self) -> float:
        """Total delay from launch request until the instance can run tasks."""
        return self.acquisition_s() + self.setup_s()

    # -- job-side ---------------------------------------------------------
    def checkpoint_s(self, workload_checkpoint_s: float | None = None) -> float:
        """Delay to stop and checkpoint a task on its source instance."""
        if workload_checkpoint_s is not None:
            base = workload_checkpoint_s
        elif self.stochastic:
            base = _truncated_normal(self.rng, CHECKPOINT_MEAN_S, *CHECKPOINT_RANGE_S)
        else:
            base = CHECKPOINT_MEAN_S
        if self.stochastic and workload_checkpoint_s is not None:
            base *= float(self.rng.uniform(0.8, 1.2))
        return base * self.migration_multiplier

    def launch_s(self, workload_launch_s: float | None = None) -> float:
        """Delay to restore and launch a task on its destination instance."""
        if workload_launch_s is not None:
            base = workload_launch_s
        elif self.stochastic:
            base = _truncated_normal(self.rng, LAUNCH_MEAN_S, *LAUNCH_RANGE_S)
        else:
            base = LAUNCH_MEAN_S
        if self.stochastic and workload_launch_s is not None:
            base *= float(self.rng.uniform(0.8, 1.2))
        return base * self.migration_multiplier

    def migration_s(
        self,
        workload_checkpoint_s: float | None = None,
        workload_launch_s: float | None = None,
    ) -> float:
        """Total task-migration delay (checkpoint + launch)."""
        return self.checkpoint_s(workload_checkpoint_s) + self.launch_s(
            workload_launch_s
        )
