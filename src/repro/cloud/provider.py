"""Simulated cloud provider (stands in for AWS EC2, §5).

The provider grants instance launch requests after an acquisition + setup
delay (Table 1), bills per second from the launch request
(:mod:`repro.cloud.pricing`), and models per-availability-zone stockouts:
the paper's Provisioner "retries in other availability zones until an
instance is successfully provisioned" (§6.1), each retry adding one
acquisition round-trip.

The provider is deliberately control-plane-only — it knows nothing about
tasks.  Task execution is the simulator's (or runtime's) job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cloud.delays import DelayModel
from repro.cloud.pricing import BillingLedger
from repro.cluster.instance import Instance, InstanceType, fresh_instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cloud.market import MarketRuntime

#: Default AZ list, mirroring a typical us-east-1 layout.
DEFAULT_ZONES = ("az-a", "az-b", "az-c", "az-d")


@dataclass(frozen=True, slots=True)
class LaunchReceipt:
    """Outcome of a launch request.

    Attributes:
        instance: The instance that will come up.
        request_time_s: When the launch was requested (billing starts here).
        ready_time_s: When the instance can start running tasks.
        zone: Availability zone that granted the request.
        attempts: Number of AZs tried (1 = default zone had capacity).
        spot: Whether this is a preemptible spot launch.
        hourly_rate: Billed rate — the on-demand price, or the discounted
            spot price for spot launches, scaled by the market pool's
            current multiplier when a market is attached.
        pool: Market pool the launch was charged to (None without a
            market, or for a family no pool covers).
        pool_exhausted: True when the launch landed beyond its pool's
            capacity and paid the backlog delay.
    """

    instance: Instance
    request_time_s: float
    ready_time_s: float
    zone: str
    attempts: int
    spot: bool = False
    hourly_rate: float = 0.0
    pool: str | None = None
    pool_exhausted: bool = False


class CapacityError(RuntimeError):
    """Raised when no availability zone can grant an instance type."""


@dataclass
class SimulatedCloud:
    """An EC2-like provider with launch delays and AZ stockouts.

    Attributes:
        delay_model: Source of acquisition/setup delays.
        zones: Availability-zone names, tried in order.
        stockout_probability: Chance that a given AZ cannot grant a request
            (independent per attempt).  0.0 — the default — means capacity
            is always available in the first zone.
        rng: Random generator for stockout draws.
        ledger: Billing ledger (shared with the metrics collector).
        spot_discount: Price multiplier for spot launches (EC2 spot
            typically trades at ~30% of on-demand; default 0.3).
        market: Optional :class:`~repro.cloud.market.MarketRuntime`.
            When attached, launches price through :meth:`price_at`
            (pool multiplier on top of the catalog rate), charge pool
            capacity, and over-capacity launches pay the pool's backlog
            delay.  ``None`` — the default — is the byte-identical
            legacy path.
    """

    delay_model: DelayModel = field(default_factory=DelayModel)
    zones: tuple[str, ...] = DEFAULT_ZONES
    stockout_probability: float = 0.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    ledger: BillingLedger = field(default_factory=BillingLedger)
    spot_discount: float = 0.3
    market: "MarketRuntime | None" = None

    def __post_init__(self) -> None:
        if not self.zones:
            raise ValueError("provider needs at least one availability zone")
        if not 0.0 <= self.stockout_probability < 1.0:
            raise ValueError("stockout_probability must be in [0, 1)")

    # ------------------------------------------------------------------
    # Launch / terminate
    # ------------------------------------------------------------------
    def launch(
        self,
        instance_type: InstanceType,
        time_s: float,
        instance: Instance | None = None,
        spot: bool = False,
    ) -> LaunchReceipt:
        """Request one instance; returns when/where it will be ready.

        Billing starts at the request time.  Each stocked-out AZ adds one
        acquisition delay before the next attempt; if every AZ is stocked
        out, :class:`CapacityError` is raised (billing is not started).

        ``instance`` lets callers that pre-allocated an instance identity
        (e.g. a scheduler's planned configuration) keep that identity.
        """
        acquisition_total = 0.0
        granted_zone: str | None = None
        attempts = 0
        for zone in self.zones:
            attempts += 1
            acquisition_total += self.delay_model.acquisition_s()
            stocked_out = (
                self.stockout_probability > 0.0
                and float(self.rng.random()) < self.stockout_probability
            )
            if not stocked_out:
                granted_zone = zone
                break
        if granted_zone is None:
            raise CapacityError(
                f"no capacity for {instance_type.name} in any of {len(self.zones)} zones"
            )

        if instance is None:
            instance = fresh_instance(instance_type)
        elif instance.instance_type is not instance_type:
            raise ValueError(
                f"instance {instance.instance_id} is of type "
                f"{instance.instance_type.name}, not {instance_type.name}"
            )
        ready_time_s = time_s + acquisition_total + self.delay_model.setup_s()
        rate = self.price_at(instance_type, time_s, spot=spot)
        pool_name: str | None = None
        pool_exhausted = False
        if self.market is not None:
            pool, pool_exhausted = self.market.on_launch(
                instance.instance_id, instance_type
            )
            if pool is not None:
                pool_name = pool.name
                if pool_exhausted:
                    # Waitlisted, not refused: the launch stays executable
                    # (scheduler decisions were validated against it) but
                    # provisioning drags while the pool runs hot.
                    ready_time_s += pool.backlog_delay_s
        self.ledger.on_launch(
            instance.instance_id, instance_type, time_s, hourly_rate=rate
        )
        return LaunchReceipt(
            instance=instance,
            request_time_s=time_s,
            ready_time_s=ready_time_s,
            zone=granted_zone,
            attempts=attempts,
            spot=spot,
            hourly_rate=rate,
            pool=pool_name,
            pool_exhausted=pool_exhausted,
        )

    def price_at(
        self, instance_type: InstanceType, time_s: float, spot: bool = False
    ) -> float:
        """Hourly rate for ``instance_type`` at ``time_s``.

        The billing hook every launch prices through: catalog on-demand
        rate, spot discount, and — when a market is attached — the
        owning pool's current price multiplier.  Without a market the
        arithmetic is exactly the legacy launch-time constant.
        """
        rate = instance_type.hourly_cost * (self.spot_discount if spot else 1.0)
        if self.market is not None:
            rate *= self.market.multiplier_at(instance_type, time_s)
        return rate

    def terminate(self, instance_id: str, time_s: float) -> None:
        """Terminate an instance; billing stops immediately."""
        self.ledger.on_terminate(instance_id, time_s)
        if self.market is not None:
            self.market.on_terminate(instance_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_cost(self, now_s: float) -> float:
        return self.ledger.total_cost(now_s)

    def active_instances(self) -> list[str]:
        return self.ledger.active_instance_ids()
