"""Multi-provider spot-market economics (ROADMAP item 4).

Eva's §7 spot extension prices capacity with one static catalog and a
flat ``spot_discount``.  This module adds the *market* underneath: named
provider/region pools, each covering a slice of the instance-type
catalog, with finite capacity and its own deterministic seeded price
process.  Prices are piecewise-constant multipliers on the catalog's
on-demand rates — either a mean-reverting random walk or a replayed
trace — evaluated **lazily** at event timestamps, so a simulation that
never attaches a market performs no price arithmetic at all and stays
byte-identical to stock Eva.

Determinism contract (mirrors :class:`~repro.sim.simulator.FailureConfig`):

* every knob lives on a frozen, fingerprint-covered dataclass
  (:class:`MarketConfig` is a :class:`~repro.sim.batch.Scenario` field);
* pool *i* draws its walk from ``np.random.default_rng([seed, i])`` — an
  independent stream per pool, advanced one normal per price segment in
  segment order, so the price at time *t* never depends on what the
  scheduler did;
* the walk is extended lazily and memoized per segment: serial and
  parallel :func:`~repro.sim.batch.run_batch` runs evaluate the
  identical sequence.

The price at time ``t`` in pool ``p`` is::

    mult(t) = clamp(quantize(base_multiplier * exp(x_k)), min, max)
    x_0 = 0,   x_{k+1} = (1 - reversion) * x_k + N(0, volatility)

with ``k = floor(t / step_s)`` (segment 0 is always the base price, so
every pool opens at its configured multiplier).  Quantization (nearest
``quantum``) keeps observed prices stable across float noise and bounds
the number of distinct price levels schedulers must reason about; the
clamp runs *after* quantization so ``min_multiplier`` is a hard floor
(the billing-floor invariant in the fuzz tests relies on it).

Replayed traces (inline ``trace`` points or a ``trace_csv`` file of
``time_s,multiplier`` rows) override the walk: the multiplier steps at
each point's timestamp and holds after the last one.

:class:`CreditModel` adds CASH-style burstable families: an instance of
a burstable family launches with a full credit balance, drains it at a
fixed net rate while billed, and drops to ``baseline_fraction`` of its
throughput when the balance hits zero — surfaced to schedulers through
the existing :class:`~repro.core.protocol.StragglerReport` degraded-
capacity observation.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.cluster.instance import InstanceType

__all__ = [
    "CreditModel",
    "MarketConfig",
    "MarketPool",
    "MarketRuntime",
    "load_price_trace_csv",
]


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")


def load_price_trace_csv(path: str) -> tuple[tuple[float, float], ...]:
    """Load a replayed price trace from ``time_s,multiplier`` CSV rows.

    Blank lines and ``#`` comments are skipped; a header row starting
    with a non-numeric field is tolerated.  The returned points are
    validated by :class:`MarketPool`.
    """
    points: list[tuple[float, float]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(",")
            try:
                time_s, mult = float(fields[0]), float(fields[1])
            except (ValueError, IndexError):
                if not points:
                    continue  # header row
                raise ValueError(f"bad price-trace row in {path!r}: {line!r}")
            points.append((time_s, mult))
    return tuple(points)


@dataclass(frozen=True)
class CreditModel:
    """CASH-style CPU-credit dynamics for burstable instance families.

    An instance of a burstable family starts with ``initial_credit_s``
    seconds of full-speed budget and drains it at a net
    ``1 - accrual_fraction`` seconds per billed second (accrual offsets
    part of the burn).  When the budget is exhausted the instance's
    effective throughput drops to ``baseline_fraction`` for the rest of
    its life — the moment is deterministic from the launch timestamp,
    so the event costs one queue entry and no bookkeeping per tick.

    Attributes:
        families: Instance families subject to credit dynamics; empty
            disables the model entirely.
        initial_credit_s: Full-speed seconds banked at launch.
        accrual_fraction: Fraction of the burn re-earned while running
            (``1.0`` would never exhaust; must be < 1).
        baseline_fraction: Throughput multiplier after exhaustion.
    """

    families: tuple[str, ...] = ()
    initial_credit_s: float = 7200.0
    accrual_fraction: float = 0.25
    baseline_fraction: float = 0.4

    def __post_init__(self) -> None:
        _require_finite("initial_credit_s", self.initial_credit_s)
        _require_finite("accrual_fraction", self.accrual_fraction)
        _require_finite("baseline_fraction", self.baseline_fraction)
        if self.initial_credit_s <= 0:
            raise ValueError(
                f"initial_credit_s must be > 0, got {self.initial_credit_s}"
            )
        if not 0.0 <= self.accrual_fraction < 1.0:
            raise ValueError(
                f"accrual_fraction must be in [0, 1), got {self.accrual_fraction}"
            )
        if not 0.0 < self.baseline_fraction <= 1.0:
            raise ValueError(
                f"baseline_fraction must be in (0, 1], got {self.baseline_fraction}"
            )

    @property
    def exhaustion_horizon_s(self) -> float:
        """Seconds from launch until a busy instance exhausts its credits."""
        return self.initial_credit_s / (1.0 - self.accrual_fraction)


@dataclass(frozen=True)
class MarketPool:
    """One provider/region capacity pool with its own price process.

    Attributes:
        name: Pool label, e.g. ``"aws-use1-c7i"`` — keys observations.
        families: Catalog families priced/capped by this pool; the empty
            tuple makes the pool the catch-all for families no earlier
            pool claims (first match wins, declaration order).
        capacity: Maximum concurrent instances; 0 = unbounded.  Launches
            beyond capacity still succeed but pay ``backlog_delay_s``
            extra provisioning delay and surface a ``PoolExhausted``
            observation — modelling a provider waitlist rather than a
            hard stockout, so scheduler decisions stay executable.
        backlog_delay_s: Extra ready-time delay per over-capacity launch.
        base_multiplier: Price multiplier at t=0 (and forever, for a
            static pool).
        volatility: Per-segment std-dev of the log-price shock; 0 plus
            no replay trace makes the pool *static* (no price events at
            all — the byte-identity path).
        reversion: Mean-reversion strength per segment, in [0, 1].
        step_s: Price-segment duration (piecewise-constant width).
        min_multiplier / max_multiplier: Hard clamp on the multiplier,
            applied after quantization.
        quantum: Price quantization step (nearest multiple); 0 disables.
        trace: Inline replayed trace — ``(time_s, multiplier)`` points,
            strictly increasing in time; overrides the random walk.
        trace_csv: Path to a CSV replay trace (see
            :func:`load_price_trace_csv`); loaded lazily at simulation
            start, mutually exclusive with ``trace``.
    """

    name: str
    families: tuple[str, ...] = ()
    capacity: int = 0
    backlog_delay_s: float = 900.0
    base_multiplier: float = 1.0
    volatility: float = 0.0
    reversion: float = 0.15
    step_s: float = 900.0
    min_multiplier: float = 0.25
    max_multiplier: float = 4.0
    quantum: float = 0.05
    trace: tuple[tuple[float, float], ...] = ()
    trace_csv: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("pool name must be non-empty")
        for knob in (
            "backlog_delay_s",
            "base_multiplier",
            "volatility",
            "reversion",
            "step_s",
            "min_multiplier",
            "max_multiplier",
            "quantum",
        ):
            _require_finite(knob, getattr(self, knob))
        if self.capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity}")
        if self.backlog_delay_s < 0:
            raise ValueError(
                f"backlog_delay_s must be >= 0, got {self.backlog_delay_s}"
            )
        if self.volatility < 0:
            raise ValueError(f"volatility must be >= 0, got {self.volatility}")
        if not 0.0 <= self.reversion <= 1.0:
            raise ValueError(f"reversion must be in [0, 1], got {self.reversion}")
        if self.step_s <= 0:
            raise ValueError(f"step_s must be > 0, got {self.step_s}")
        if not 0.0 < self.min_multiplier <= self.max_multiplier:
            raise ValueError(
                "need 0 < min_multiplier <= max_multiplier, got "
                f"({self.min_multiplier}, {self.max_multiplier})"
            )
        if not self.min_multiplier <= self.base_multiplier <= self.max_multiplier:
            raise ValueError(
                f"base_multiplier {self.base_multiplier} outside "
                f"[{self.min_multiplier}, {self.max_multiplier}]"
            )
        if self.quantum < 0:
            raise ValueError(f"quantum must be >= 0, got {self.quantum}")
        if self.trace and self.trace_csv is not None:
            raise ValueError("trace and trace_csv are mutually exclusive")
        last = -math.inf
        for time_s, mult in self.trace:
            _require_finite("trace time", time_s)
            _require_finite("trace multiplier", mult)
            if time_s <= last:
                raise ValueError("trace times must be strictly increasing")
            if mult <= 0:
                raise ValueError(f"trace multiplier must be > 0, got {mult}")
            last = time_s

    @property
    def is_static(self) -> bool:
        """True when the pool's price never moves (no events scheduled)."""
        return (
            self.volatility == 0.0 and not self.trace and self.trace_csv is None
        )


@dataclass(frozen=True)
class MarketConfig:
    """Spot-market injection knobs (off by default).

    A disabled config — or one with no pools — reproduces the
    market-free simulator byte-identically: no price events are armed,
    launches bill at the catalog constant, and the spot preemption draw
    is untouched.  Like :class:`~repro.sim.simulator.FailureConfig`,
    every field is a plain scalar/tuple on a frozen dataclass so the
    scenario fingerprint covers it automatically, and
    :func:`~repro.sim.batch.reseed` rewrites ``seed``.

    Attributes:
        enabled: Master switch.
        pools: Provider/region pools, first-match-wins by family.
        seed: Root seed of the per-pool price streams.
        credits: Optional burstable-family credit dynamics.
        eviction_coupling: Exponent coupling the spot eviction hazard to
            the pool price at launch time: the preemption rate becomes
            ``rate * mult ** eviction_coupling`` (0 — the default —
            leaves the legacy constant-rate draw byte-identical).
            Economically: when the market price runs hot, the provider
            reclaims discounted capacity more aggressively.
    """

    enabled: bool = False
    pools: tuple[MarketPool, ...] = ()
    seed: int = 0
    credits: CreditModel | None = None
    eviction_coupling: float = 0.0

    def __post_init__(self) -> None:
        _require_finite("eviction_coupling", self.eviction_coupling)
        if self.eviction_coupling < 0:
            raise ValueError(
                f"eviction_coupling must be >= 0, got {self.eviction_coupling}"
            )
        names = [pool.name for pool in self.pools]
        if len(names) != len(set(names)):
            raise ValueError(f"pool names must be unique, got {names}")

    @property
    def active(self) -> bool:
        """True when the market actually prices anything."""
        return self.enabled and bool(self.pools)


class _PoolRT:
    """Runtime price state of one pool: lazy walk + capacity count."""

    __slots__ = ("pool", "index", "_rng", "_x", "_mults", "_replay", "count")

    def __init__(self, pool: MarketPool, index: int, seed: int):
        self.pool = pool
        self.index = index
        self._rng = np.random.default_rng([seed, index])
        #: Lazily extended log-price states; segment 0 is pinned at 0.
        self._x: list[float] = [0.0]
        #: Quantized/clamped multipliers, parallel to ``_x``.
        self._mults: list[float] = [self._finish(pool.base_multiplier)]
        self._replay: tuple[tuple[float, float], ...] | None = None
        if pool.trace:
            self._replay = pool.trace
        elif pool.trace_csv is not None:
            self._replay = load_price_trace_csv(pool.trace_csv)
        #: Live instances currently charged to this pool.
        self.count = 0

    def _finish(self, raw: float) -> float:
        pool = self.pool
        if pool.quantum > 0:
            raw = round(raw / pool.quantum) * pool.quantum
        return min(pool.max_multiplier, max(pool.min_multiplier, raw))

    def _extend_to(self, segment: int) -> None:
        # One normal draw per segment, in segment order: the stream is a
        # pure function of (seed, pool index, segment), never of load.
        pool = self.pool
        while len(self._x) <= segment:
            x = (1.0 - pool.reversion) * self._x[-1] + float(
                self._rng.normal(0.0, pool.volatility)
            )
            self._x.append(x)
            self._mults.append(self._finish(pool.base_multiplier * math.exp(x)))

    def multiplier_at(self, time_s: float) -> float:
        pool = self.pool
        if self._replay is not None:
            idx = bisect_right(self._replay, (time_s, math.inf)) - 1
            if idx < 0:
                return self._finish(pool.base_multiplier)
            return self._finish(self._replay[idx][1])
        if pool.is_static:
            return self._mults[0]
        segment = int(time_s // pool.step_s)
        self._extend_to(segment)
        return self._mults[segment]

    def next_boundary_after(self, time_s: float) -> float | None:
        """Next timestamp the price *may* change, or None (static/done)."""
        pool = self.pool
        if self._replay is not None:
            idx = bisect_right(self._replay, (time_s, math.inf))
            if idx >= len(self._replay):
                return None
            return self._replay[idx][0]
        if pool.is_static:
            return None
        return (int(time_s // pool.step_s) + 1) * pool.step_s


class MarketRuntime:
    """Per-simulation market state: prices, capacity counts, membership.

    Built once per :class:`~repro.sim.simulator.ClusterSimulator` from an
    *active* :class:`MarketConfig`; the no-market path never constructs
    one.  Holds nothing the scheduler can reach — policies learn about
    the market exclusively through ``PriceChanged`` / ``PoolExhausted``
    observations.
    """

    def __init__(self, config: MarketConfig):
        if not config.active:
            raise ValueError("MarketRuntime needs an enabled config with pools")
        self.config = config
        self._pools = [
            _PoolRT(pool, index, config.seed)
            for index, pool in enumerate(config.pools)
        ]
        #: family -> pool index (first match wins; None = unpooled).
        self._by_family: dict[str, int | None] = {}
        #: instance_id -> pool index, for re-rating and capacity release.
        self._members: dict[str, int] = {}
        #: Multiplier each pool currently bills at (updated by the
        #: simulator's PRICE_CHANGE handler, read by launches in between).
        self.current = [rt.multiplier_at(0.0) for rt in self._pools]

    # -- resolution ----------------------------------------------------
    def pool_index_for_family(self, family: str) -> int | None:
        cached = self._by_family.get(family, -1)
        if cached != -1:
            return cached
        chosen: int | None = None
        fallback: int | None = None
        for rt in self._pools:
            if family in rt.pool.families:
                chosen = rt.index
                break
            if fallback is None and not rt.pool.families:
                fallback = rt.index
        if chosen is None:
            chosen = fallback
        self._by_family[family] = chosen
        return chosen

    def pool(self, index: int) -> MarketPool:
        return self._pools[index].pool

    # -- pricing -------------------------------------------------------
    def multiplier_at(self, instance_type: InstanceType, time_s: float) -> float:
        """Lazy price lookup — used by launches and the eviction hazard."""
        index = self.pool_index_for_family(instance_type.family)
        if index is None:
            return 1.0
        return self._pools[index].multiplier_at(time_s)

    def refresh(self, index: int, time_s: float) -> tuple[float, float]:
        """Advance pool ``index`` to ``time_s``; returns (old, new)."""
        old = self.current[index]
        new = self._pools[index].multiplier_at(time_s)
        self.current[index] = new
        return old, new

    def next_boundary_after(self, index: int, time_s: float) -> float | None:
        return self._pools[index].next_boundary_after(time_s)

    def initial_boundaries(self) -> list[tuple[int, float]]:
        """(pool index, first price boundary) for every non-static pool."""
        out = []
        for rt in self._pools:
            boundary = rt.next_boundary_after(0.0)
            if boundary is not None:
                out.append((rt.index, boundary))
        return out

    # -- capacity ------------------------------------------------------
    def on_launch(
        self, instance_id: str, instance_type: InstanceType
    ) -> tuple[MarketPool | None, bool]:
        """Charge a launch to its pool; returns (pool, over-capacity?)."""
        index = self.pool_index_for_family(instance_type.family)
        if index is None:
            return None, False
        rt = self._pools[index]
        rt.count += 1
        self._members[instance_id] = index
        exhausted = 0 < rt.pool.capacity < rt.count
        return rt.pool, exhausted

    def on_terminate(self, instance_id: str) -> None:
        index = self._members.pop(instance_id, None)
        if index is not None:
            self._pools[index].count -= 1

    def members_of(self, index: int) -> list[str]:
        """Live instance ids charged to pool ``index`` (sorted)."""
        return sorted(
            iid for iid, idx in self._members.items() if idx == index
        )
