"""Co-location interference: Figure-1 matrix and ground-truth model."""

from repro.interference.matrix import (
    FIGURE1_WORKLOADS,
    figure1_matrix,
    pairwise_throughput,
    resolve_profile_name,
    uniform_matrix,
)
from repro.interference.model import InterferenceModel, no_interference_model

__all__ = [
    "FIGURE1_WORKLOADS",
    "figure1_matrix",
    "pairwise_throughput",
    "resolve_profile_name",
    "uniform_matrix",
    "InterferenceModel",
    "no_interference_model",
]
