"""Pairwise co-location throughput matrix (Figure 1).

Each entry ``PAIRWISE[w1][w2]`` is the normalized throughput of workload
``w1`` when co-located with workload ``w2`` on the same instance, both
receiving their requested resources on disjoint GPUs/CPUs.  Values are
transcribed verbatim from Figure 1 of the paper (rows = Workload 1,
columns = Workload 2).

The evaluation's Table 7 lists ten workloads but Figure 1 profiles eight:
``ResNet18-2`` / ``ResNet18-4`` share the measured ResNet18 row, and ViT —
unprofiled in Figure 1 — inherits the ResNet18 row as the closest published
proxy (both are ImageNet image classifiers with heavy input pipelines).
This extension is a documented substitution (DESIGN.md §2) and can be
overridden by supplying a custom matrix.
"""

from __future__ import annotations

from typing import Mapping

#: Figure 1 row/column order.
FIGURE1_WORKLOADS = (
    "ResNet18",
    "GraphSAGE",
    "CycleGAN",
    "GPT2",
    "GCN",
    "OpenFOAM",
    "Diamond",
    "A3C",
)

#: Figure 1 entries, row-major: rows/cols follow FIGURE1_WORKLOADS.
_FIGURE1_VALUES: tuple[tuple[float, ...], ...] = (
    (0.93, 0.97, 1.00, 0.92, 0.83, 0.99, 0.89, 0.83),  # ResNet18
    (0.89, 0.89, 0.98, 0.97, 0.88, 0.95, 1.00, 0.74),  # GraphSAGE
    (0.99, 1.00, 0.99, 0.99, 0.85, 1.00, 1.00, 1.00),  # CycleGAN
    (0.79, 0.96, 0.79, 0.86, 1.00, 0.99, 0.80, 0.78),  # GPT2
    (0.92, 0.90, 0.95, 0.98, 0.90, 0.99, 0.95, 0.65),  # GCN
    (0.81, 0.98, 0.98, 0.99, 0.95, 0.97, 0.83, 0.94),  # OpenFOAM
    (0.96, 0.98, 1.00, 1.00, 0.99, 1.00, 0.93, 0.89),  # Diamond
    (0.91, 0.91, 0.98, 0.96, 0.94, 1.00, 0.94, 0.67),  # A3C
)

#: Table-7 workloads that alias a Figure-1 profile.
_ALIASES: Mapping[str, str] = {
    "ResNet18-2": "ResNet18",
    "ResNet18-4": "ResNet18",
    "ViT": "ResNet18",
}


def figure1_matrix() -> dict[str, dict[str, float]]:
    """The raw 8×8 Figure 1 matrix as nested dicts."""
    return {
        row_name: {
            col_name: _FIGURE1_VALUES[i][j]
            for j, col_name in enumerate(FIGURE1_WORKLOADS)
        }
        for i, row_name in enumerate(FIGURE1_WORKLOADS)
    }


def resolve_profile_name(workload: str) -> str:
    """Map a Table-7 workload name to its Figure-1 profile row."""
    return _ALIASES.get(workload, workload)


def pairwise_throughput(workload: str, other: str) -> float:
    """Ground-truth normalized throughput of ``workload`` next to ``other``.

    Unknown workloads (not in Figure 1 and not aliased) are treated as
    non-interfering (1.0), matching how a brand-new workload would look
    before any measurement exists.
    """
    matrix = _MATRIX
    row = resolve_profile_name(workload)
    col = resolve_profile_name(other)
    if row not in matrix or col not in matrix[row]:
        return 1.0
    return matrix[row][col]


_MATRIX = figure1_matrix()


def uniform_matrix(value: float, workloads: tuple[str, ...] = FIGURE1_WORKLOADS) -> dict[str, dict[str, float]]:
    """A constant pairwise matrix — the Figure 4 interference sweep."""
    if not 0.0 < value <= 1.0:
        raise ValueError(f"pairwise throughput must be in (0, 1], got {value}")
    return {w1: {w2: value for w2 in workloads} for w1 in workloads}
