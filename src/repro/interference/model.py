"""Ground-truth interference model used by the simulator (§5).

The simulator needs to know the *actual* throughput of each task given its
co-location set; Eva's scheduler never reads this model directly — it
observes throughputs through the ThroughputMonitor, exactly as in a real
deployment.

Model: the normalized throughput of task τ co-located with tasks
T − {τ} is the product of pairwise entries
``Π_{τ' ∈ T−{τ}} pairwise(w(τ), w(τ'))`` — the same multiplicative
composition the paper's estimator uses (§4.3), here taken as ground truth.
Multi-task (data-parallel) jobs take the min over their tasks' throughputs
(straggler semantics, §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.interference.matrix import pairwise_throughput, resolve_profile_name


@dataclass
class InterferenceModel:
    """Ground-truth co-location throughput oracle.

    Attributes:
        pairwise_override: Optional explicit matrix ``{w1: {w2: tput}}``.
            When None, the Figure 1 matrix (with aliases) is used.
        uniform_value: If set, every distinct-pair entry is this constant
            (the Figure 4 sweep).  Self-pairs also use the constant, as in
            the paper's description ("when two jobs are co-located, they
            both have normalized throughput" of the constant).
    """

    pairwise_override: Mapping[str, Mapping[str, float]] | None = None
    uniform_value: float | None = None
    _cache: dict[tuple[str, tuple[str, ...]], float] = field(
        default_factory=dict, repr=False
    )

    def pairwise(self, workload: str, other: str) -> float:
        """Normalized throughput of ``workload`` when paired with ``other``."""
        if self.uniform_value is not None:
            return self.uniform_value
        if self.pairwise_override is not None:
            row = self.pairwise_override.get(resolve_profile_name(workload))
            if row is not None:
                value = row.get(resolve_profile_name(other))
                if value is not None:
                    return value
            return 1.0
        return pairwise_throughput(workload, other)

    def task_throughput(self, workload: str, co_located: Iterable[str]) -> float:
        """Throughput of one task given the workloads sharing its instance."""
        return self.task_throughput_sorted(workload, tuple(sorted(co_located)))

    def task_throughput_sorted(
        self, workload: str, neighbours: tuple[str, ...]
    ) -> float:
        """Memoized lookup for an already-sorted neighbour multiset.

        Hot-path variant for callers (the simulator) that maintain sorted
        neighbour multisets incrementally and can skip the re-sort.
        """
        key = (workload, neighbours)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        tput = 1.0
        for other in neighbours:
            tput *= self.pairwise(workload, other)
        self._cache[key] = tput
        return tput

    def job_throughput(self, task_throughputs: Sequence[float]) -> float:
        """Data-parallel job throughput: the straggler's throughput (§4.4)."""
        if not task_throughputs:
            return 1.0
        return min(task_throughputs)


def no_interference_model() -> InterferenceModel:
    """A model where co-location never degrades throughput."""
    return InterferenceModel(uniform_value=1.0)
