"""Workload suite (Table 7) and trace generators (synthetic, Alibaba, Gavel)."""

from repro.workloads.alibaba import (
    AlibabaDurationModel,
    FULL_TRACE_JOBS,
    TABLE8_GPU_COMPOSITION,
    alibaba_replay_trace,
    gavel_replay_trace,
    remix_multi_gpu,
    remix_multi_task,
    synthesize_alibaba_trace,
)
from repro.workloads.gavel import (
    gavel_mean_hours,
    gavel_quantile_hours,
    sample_gavel_durations_hours,
)
from repro.workloads.synthetic import (
    DEFAULT_INTERARRIVAL_S,
    large_physical_trace,
    microbench_task_pool,
    multitask_microbench_trace,
    small_physical_trace,
    synthetic_trace,
)
from repro.workloads.trace import Trace, poisson_arrival_times, sort_jobs_by_arrival
from repro.workloads.workloads import (
    TABLE7_WORKLOADS,
    WorkloadSpec,
    workload,
    workload_names,
)

__all__ = [
    "AlibabaDurationModel",
    "FULL_TRACE_JOBS",
    "TABLE8_GPU_COMPOSITION",
    "alibaba_replay_trace",
    "gavel_replay_trace",
    "remix_multi_gpu",
    "remix_multi_task",
    "synthesize_alibaba_trace",
    "gavel_mean_hours",
    "gavel_quantile_hours",
    "sample_gavel_durations_hours",
    "DEFAULT_INTERARRIVAL_S",
    "large_physical_trace",
    "microbench_task_pool",
    "multitask_microbench_trace",
    "small_physical_trace",
    "synthetic_trace",
    "Trace",
    "poisson_arrival_times",
    "sort_jobs_by_arrival",
    "TABLE7_WORKLOADS",
    "WorkloadSpec",
    "workload",
    "workload_names",
]
