"""Synthetic traces for the physical experiments (§6.1).

The paper's physical experiments use synthetic traces "similar to prior
work": jobs sampled from the ten Table-7 workloads, durations uniform in
[0.5, 3] hours, Poisson arrivals with a 20-minute mean inter-arrival time.
The small-scale experiment has 32 jobs (Table 11), the large-scale one 120
jobs (Table 10); the Table 6 micro-benchmark uses 100 4-task jobs with
durations in [0.5, 16] hours.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import (
    Trace,
    _validate_deadline_knobs,
    poisson_arrival_times,
    sample_deadlines,
    sort_jobs_by_arrival,
)
from repro.workloads.workloads import TABLE7_WORKLOADS, WorkloadSpec

#: Default mean inter-arrival time used throughout the evaluation (§6.1).
DEFAULT_INTERARRIVAL_S = 20.0 * 60.0


def synthetic_trace(
    num_jobs: int,
    seed: int = 0,
    duration_range_hours: tuple[float, float] = (0.5, 3.0),
    mean_interarrival_s: float = DEFAULT_INTERARRIVAL_S,
    workloads: tuple[WorkloadSpec, ...] = TABLE7_WORKLOADS,
    name: str | None = None,
    deadline_fraction: float = 0.0,
    deadline_slack_range: tuple[float, float] = (1.5, 3.0),
) -> Trace:
    """A physical-experiment-style trace.

    Jobs are sampled uniformly from ``workloads``; durations uniformly
    from ``duration_range_hours``; arrivals follow a Poisson process.

    ``deadline_fraction`` makes that fraction of jobs (in expectation)
    deadline-bearing: each selected job's ``deadline_hours`` is its
    duration times a slack factor drawn uniformly from
    ``deadline_slack_range`` (the deadline clock starts at arrival, so
    slack must cover queueing, launch delays, and interference — a
    factor near 1 is a near-unattainable SLO, the tightness axis of the
    ``deadline-slo`` experiment).  The default ``0.0`` draws nothing
    extra from the RNG stream, so legacy traces stay byte-identical;
    with a positive fraction, the deadline draws happen after all
    arrival/workload/duration draws, so sweeping tightness at a fixed
    seed reuses the identical underlying job stream.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    lo, hi = duration_range_hours
    if not 0 < lo <= hi:
        raise ValueError(f"invalid duration range {duration_range_hours}")
    _validate_deadline_knobs(deadline_fraction, deadline_slack_range)

    rng = np.random.default_rng(seed)
    arrivals = poisson_arrival_times(num_jobs, mean_interarrival_s, rng)
    jobs = []
    for idx in range(num_jobs):
        spec = workloads[int(rng.integers(len(workloads)))]
        duration = float(rng.uniform(lo, hi))
        jobs.append(
            spec.make_job(
                duration_hours=duration,
                arrival_time_s=arrivals[idx],
                job_id=f"syn-{idx:04d}",
            )
        )
    jobs = sample_deadlines(jobs, rng, deadline_fraction, deadline_slack_range)
    return Trace(
        name=name or f"synthetic-{num_jobs}", jobs=sort_jobs_by_arrival(jobs)
    )


def small_physical_trace(seed: int = 0) -> Trace:
    """The 32-job trace of the small-scale physical experiment (Table 11)."""
    return synthetic_trace(32, seed=seed, name="physical-32")


def large_physical_trace(seed: int = 0) -> Trace:
    """The 120-job trace of the large-scale physical experiment (Table 10)."""
    return synthetic_trace(120, seed=seed, name="physical-120")


def multitask_microbench_trace(
    num_jobs: int = 100,
    tasks_per_job: int = 4,
    seed: int = 0,
    duration_range_hours: tuple[float, float] = (0.5, 16.0),
    mean_interarrival_s: float = DEFAULT_INTERARRIVAL_S,
) -> Trace:
    """The Table 6 micro-benchmark trace: multi-task jobs arriving over time.

    Each job consists of ``tasks_per_job`` identical tasks, uniformly
    sampled from Table 7, with durations in [0.5, 16] hours.
    """
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrival_times(num_jobs, mean_interarrival_s, rng)
    jobs = []
    for idx in range(num_jobs):
        spec = TABLE7_WORKLOADS[int(rng.integers(len(TABLE7_WORKLOADS)))]
        duration = float(rng.uniform(*duration_range_hours))
        jobs.append(
            spec.make_job(
                duration_hours=duration,
                arrival_time_s=arrivals[idx],
                num_tasks=tasks_per_job,
                job_id=f"mt-{idx:04d}",
            )
        )
    return Trace(name=f"multitask-{num_jobs}x{tasks_per_job}", jobs=sort_jobs_by_arrival(jobs))


def microbench_task_pool(num_tasks: int, seed: int = 0) -> list:
    """A bag of independent tasks for the Table 4/5 packing micro-benchmarks.

    Tasks are sampled from the Table-7 workloads as single-task jobs (the
    micro-benchmark packs an instantaneous task set, so arrival times and
    durations are irrelevant).
    """
    rng = np.random.default_rng(seed)
    tasks = []
    for idx in range(num_tasks):
        spec = TABLE7_WORKLOADS[int(rng.integers(len(TABLE7_WORKLOADS)))]
        job = spec.make_job(
            duration_hours=1.0,
            arrival_time_s=0.0,
            num_tasks=1,
            job_id=f"mb-{idx:05d}",
        )
        tasks.append(job.tasks[0])
    return tasks
