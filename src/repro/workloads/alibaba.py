"""Alibaba-like production trace synthesis (§6.1, Tables 8 and 9).

The paper's simulations consume the public Alibaba ``cluster-trace-gpu-v2023``
(6,274 jobs after filtering).  That trace is not redistributable here, so we
synthesize one matching the statistics the paper publishes:

* **GPU-demand composition** matches Table 8 exactly in expectation
  (0 GPU: 13.41 %, 1: 86.17 %, 2: 0.20 %, 4: 0.18 %, 8: 0.04 %).
* **Durations** match Table 9's Alibaba row: the quantile anchors
  (median 0.2 h, P80 1.0 h, P95 5.2 h) are hit by a piecewise log-linear
  inverse CDF, and the heavy tail above P95 is a truncated Pareto whose
  shape is solved numerically so the overall mean is 9.1 h.
* Jobs are **labelled with a Table-7 workload** compatible with their GPU
  demand (§6.1: "We assign each job a workload from Table 7 to simulate
  the job's migration overhead and co-location throughput"), while keeping
  their own trace-derived resource demands.

The generator also provides the Figure 6 (multi-GPU composition) and
Figure 7 (multi-task duplication) remixes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.cluster.resources import ResourceVector
from repro.cluster.task import DEFAULT_FAMILY, Job, Task
from repro.workloads.trace import (
    Trace,
    poisson_arrival_times,
    sample_deadlines,
    sort_jobs_by_arrival,
)
from repro.workloads.workloads import (
    CPU_WORKLOADS,
    GPU_WORKLOADS_BY_COUNT,
    workload,
)

#: Table 8 — job composition by per-task GPU demand.
TABLE8_GPU_COMPOSITION: tuple[tuple[int, float], ...] = (
    (0, 0.1341),
    (1, 0.8617),
    (2, 0.0020),
    (4, 0.0018),
    (8, 0.0004),
)

#: Table 9 Alibaba duration statistics (hours).
ALIBABA_MEAN_H = 9.1
ALIBABA_QUANTILE_ANCHORS: tuple[tuple[float, float], ...] = (
    (0.00, 0.008),  # shortest filtered jobs: ~30 s
    (0.50, 0.2),  # median 0.2 h
    (0.80, 1.0),  # P80 1.0 h
    (0.95, 5.2),  # P95 5.2 h
)
#: Cap on the Pareto tail; keeps simulations finite while preserving the mean.
ALIBABA_MAX_DURATION_H = 1000.0

#: Number of jobs in the filtered trace the paper simulates.
FULL_TRACE_JOBS = 6274


def _segment_mean(x_lo: float, x_hi: float) -> float:
    """Mean of a log-linear inverse-CDF segment over a unit of probability."""
    if math.isclose(x_lo, x_hi):
        return x_lo
    ratio = x_hi / x_lo
    return x_lo * (ratio - 1.0) / math.log(ratio)


def _below_tail_mean(anchors: tuple[tuple[float, float], ...]) -> float:
    """Expected duration contributed by the quantile-interpolated body."""
    total = 0.0
    for (q_lo, x_lo), (q_hi, x_hi) in zip(anchors, anchors[1:]):
        total += (q_hi - q_lo) * _segment_mean(x_lo, x_hi)
    return total


def _truncated_pareto_mean(alpha: float, x_min: float, x_max: float) -> float:
    """Mean of a Pareto(alpha, x_min) truncated at x_max."""
    if math.isclose(alpha, 1.0, abs_tol=1e-12):
        return (x_max - x_min) * 0 + x_min * math.log(x_max / x_min) / (
            1.0 - (x_min / x_max)
        )
    norm = 1.0 - (x_min / x_max) ** alpha
    return (
        alpha
        * x_min**alpha
        / (alpha - 1.0)
        * (x_min ** (1.0 - alpha) - x_max ** (1.0 - alpha))
        / norm
    )


def solve_tail_alpha(
    target_mean_h: float = ALIBABA_MEAN_H,
    anchors: tuple[tuple[float, float], ...] = ALIBABA_QUANTILE_ANCHORS,
    x_max: float = ALIBABA_MAX_DURATION_H,
) -> float:
    """Pareto shape making the overall duration mean hit ``target_mean_h``."""
    tail_q, x_min = anchors[-1]
    tail_weight = 1.0 - tail_q
    body = _below_tail_mean(anchors)
    target_tail_mean = (target_mean_h - body) / tail_weight
    limit_mean = (x_max - x_min) / math.log(x_max / x_min)  # alpha -> 0 limit
    if target_tail_mean >= limit_mean:
        raise ValueError(
            f"target tail mean {target_tail_mean:.1f}h unreachable with cap {x_max}h"
        )

    def gap(alpha: float) -> float:
        return _truncated_pareto_mean(alpha, x_min, x_max) - target_tail_mean

    return float(brentq(gap, 1e-6, 20.0))


@dataclass(frozen=True)
class AlibabaDurationModel:
    """Inverse-CDF duration sampler matching Table 9's Alibaba row."""

    anchors: tuple[tuple[float, float], ...] = ALIBABA_QUANTILE_ANCHORS
    x_max: float = ALIBABA_MAX_DURATION_H
    target_mean_h: float = ALIBABA_MEAN_H

    def __post_init__(self) -> None:
        object.__setattr__(self, "_alpha", solve_tail_alpha(
            self.target_mean_h, self.anchors, self.x_max
        ))

    @property
    def alpha(self) -> float:
        return self._alpha  # type: ignore[attr-defined]

    def inverse_cdf(self, u: float) -> float:
        """Duration (hours) at probability level ``u`` in [0, 1)."""
        if not 0.0 <= u < 1.0:
            raise ValueError(f"u must be in [0, 1), got {u}")
        tail_q, x_min = self.anchors[-1]
        if u >= tail_q:
            # Truncated Pareto tail.
            residual = (u - tail_q) / (1.0 - tail_q)
            norm = 1.0 - (x_min / self.x_max) ** self.alpha
            return x_min * (1.0 - residual * norm) ** (-1.0 / self.alpha)
        for (q_lo, x_lo), (q_hi, x_hi) in zip(self.anchors, self.anchors[1:]):
            if u <= q_hi:
                frac = (u - q_lo) / (q_hi - q_lo)
                return x_lo * (x_hi / x_lo) ** frac
        raise AssertionError("unreachable")  # pragma: no cover

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        us = rng.random(size)
        return np.array([self.inverse_cdf(float(u)) for u in us])


#: CPU-core options for trace-derived demands, weighted toward small
#: requests as in production GPU-sharing traces.
_CPU_CHOICES = np.array([1, 2, 4, 6, 8, 12, 16])
_CPU_WEIGHTS = np.array([0.10, 0.24, 0.30, 0.14, 0.12, 0.06, 0.04])
_RAM_CHOICES = np.array([4.0, 8.0, 16.0, 32.0, 64.0])
_RAM_WEIGHTS = np.array([0.18, 0.30, 0.28, 0.16, 0.08])


def _sample_gpu_demand(rng: np.random.Generator) -> int:
    u = float(rng.random())
    acc = 0.0
    for gpus, prob in TABLE8_GPU_COMPOSITION:
        acc += prob
        if u < acc:
            return gpus
    return TABLE8_GPU_COMPOSITION[-1][0]


def _label_workload(gpus: int, rng: np.random.Generator) -> str:
    if gpus == 0:
        return CPU_WORKLOADS[int(rng.integers(len(CPU_WORKLOADS)))]
    options = GPU_WORKLOADS_BY_COUNT.get(gpus, GPU_WORKLOADS_BY_COUNT[4])
    return options[int(rng.integers(len(options)))]


def _alibaba_job(
    index: int,
    gpus: int,
    duration_hours: float,
    arrival_s: float,
    rng: np.random.Generator,
) -> Job:
    """Build one trace job: trace-derived demands + Table-7 workload label."""
    cpus = float(rng.choice(_CPU_CHOICES, p=_CPU_WEIGHTS))
    ram = float(rng.choice(_RAM_CHOICES, p=_RAM_WEIGHTS))
    # Multi-GPU jobs come with proportionally larger host demands.
    if gpus >= 2:
        cpus = min(32.0, cpus * gpus / 2)
        ram = min(244.0, ram * gpus / 2)
    label = _label_workload(gpus, rng)
    spec = workload(label)
    demand = ResourceVector(float(gpus), cpus, ram)
    job_id = f"ali-{index:05d}"
    task = Task(
        task_id=f"{job_id}/t0",
        job_id=job_id,
        workload=label,
        demands={DEFAULT_FAMILY: demand},
        migration=spec.migration(),
    )
    return Job(
        job_id=job_id,
        tasks=(task,),
        arrival_time_s=arrival_s,
        duration_hours=duration_hours,
        workload=label,
    )


def synthesize_alibaba_trace(
    num_jobs: int = FULL_TRACE_JOBS,
    seed: int = 0,
    arrival_rate_per_hour: float = 3.0,
    duration_model: AlibabaDurationModel | None = None,
    durations_hours: np.ndarray | None = None,
    name: str | None = None,
    deadline_fraction: float = 0.0,
    deadline_slack_range: tuple[float, float] = (1.5, 3.0),
) -> Trace:
    """Synthesize an Alibaba-like trace (documented substitution, DESIGN.md §2).

    Args:
        num_jobs: Trace length (paper: 6,274 after filtering).
        seed: RNG seed — traces are fully reproducible.
        arrival_rate_per_hour: Poisson arrival rate (§6.8 sweeps 0.5–3).
        duration_model: Duration sampler; defaults to the Table 9
            Alibaba model.  Pass a Gavel model's samples via
            ``durations_hours`` instead for Table 14.
        durations_hours: Optional explicit per-job durations, overriding
            ``duration_model`` (used for the Gavel variant).
        deadline_fraction: Expected fraction of jobs carrying a
            ``deadline_hours`` SLO (duration × a slack factor drawn
            uniformly from ``deadline_slack_range``; see
            :func:`~repro.workloads.trace.sample_deadlines`).  ``0.0``
            (the default) consumes nothing from the RNG stream, keeping
            legacy traces byte-identical.
        deadline_slack_range: Slack-factor range for the sampled
            deadlines (the tightness axis of the ``deadline-slo``
            experiment).
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    rng = np.random.default_rng(seed)
    if durations_hours is None:
        model = duration_model or AlibabaDurationModel()
        durations_hours = model.sample(rng, num_jobs)
    elif len(durations_hours) != num_jobs:
        raise ValueError("durations_hours length must equal num_jobs")

    mean_interarrival_s = 3600.0 / arrival_rate_per_hour
    arrivals = poisson_arrival_times(num_jobs, mean_interarrival_s, rng)
    jobs = []
    for idx in range(num_jobs):
        gpus = _sample_gpu_demand(rng)
        jobs.append(
            _alibaba_job(idx, gpus, float(durations_hours[idx]), arrivals[idx], rng)
        )
    jobs = sample_deadlines(jobs, rng, deadline_fraction, deadline_slack_range)
    return Trace(
        name=name or f"alibaba-like-{num_jobs}", jobs=sort_jobs_by_arrival(jobs)
    )


# ----------------------------------------------------------------------
# Figure 6 remix: multi-GPU composition
# ----------------------------------------------------------------------

#: Figure 6 keeps 2-GPU : 4-GPU : 8-GPU at 5 : 4 : 1.
MULTI_GPU_MIX: tuple[tuple[int, float], ...] = ((2, 0.5), (4, 0.4), (8, 0.1))


def remix_multi_gpu(
    trace: Trace, multi_gpu_fraction: float, seed: int = 0
) -> Trace:
    """Rewrite GPU jobs so ``multi_gpu_fraction`` of all jobs are multi-GPU.

    Non-GPU jobs are left untouched ("the proportion of non-GPU jobs
    remains the same"); single-GPU jobs are upgraded to 2/4/8 GPUs in the
    5:4:1 ratio until the target fraction is met.
    """
    if not 0.0 <= multi_gpu_fraction <= 1.0:
        raise ValueError("multi_gpu_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    gpu_job_indices = [
        i for i, j in enumerate(trace.jobs) if j.tasks[0].max_demand.gpus > 0
    ]
    target_multi = int(round(multi_gpu_fraction * len(trace.jobs)))
    chosen = list(
        rng.choice(
            gpu_job_indices, size=min(target_multi, len(gpu_job_indices)), replace=False
        )
    )

    mix_gpus = [g for g, _ in MULTI_GPU_MIX]
    mix_probs = [p for _, p in MULTI_GPU_MIX]
    new_jobs = list(trace.jobs)
    for i in chosen:
        job = trace.jobs[i]
        gpus = int(rng.choice(mix_gpus, p=mix_probs))
        old_task = job.tasks[0]
        old_demand = old_task.demand_for(DEFAULT_FAMILY)
        scale = max(1.0, gpus / max(1.0, old_demand.gpus))
        demand = ResourceVector(
            float(gpus),
            min(64.0, old_demand.cpus * scale),
            min(488.0, old_demand.ram_gb * scale),
        )
        label = _label_workload(gpus, rng)
        spec = workload(label)
        task = Task(
            task_id=old_task.task_id,
            job_id=job.job_id,
            workload=label,
            demands={DEFAULT_FAMILY: demand},
            migration=spec.migration(),
        )
        new_jobs[i] = Job(
            job_id=job.job_id,
            tasks=(task,),
            arrival_time_s=job.arrival_time_s,
            duration_hours=job.duration_hours,
            workload=label,
        )
    return Trace(
        name=f"{trace.name}+multigpu{multi_gpu_fraction:.0%}",
        jobs=sort_jobs_by_arrival(new_jobs),
    )


# ----------------------------------------------------------------------
# Figure 7 remix: multi-task duplication
# ----------------------------------------------------------------------


def remix_multi_task(
    trace: Trace, multi_task_fraction: float, seed: int = 0
) -> Trace:
    """Duplicate tasks of randomly chosen jobs into 2- or 4-task jobs (1:1).

    Each duplicated task keeps the resource demands of the original (§6.7).
    """
    if not 0.0 <= multi_task_fraction <= 1.0:
        raise ValueError("multi_task_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_multi = int(round(multi_task_fraction * len(trace.jobs)))
    chosen = set(
        rng.choice(len(trace.jobs), size=n_multi, replace=False).tolist()
        if n_multi
        else []
    )
    new_jobs = []
    for i, job in enumerate(trace.jobs):
        if i not in chosen or job.is_multi_task:
            new_jobs.append(job)
            continue
        arity = 2 if rng.random() < 0.5 else 4
        template = job.tasks[0]
        tasks = tuple(
            Task(
                task_id=f"{job.job_id}/t{k}",
                job_id=job.job_id,
                workload=template.workload,
                demands=dict(template.demands),
                migration=template.migration,
            )
            for k in range(arity)
        )
        new_jobs.append(
            Job(
                job_id=job.job_id,
                tasks=tasks,
                arrival_time_s=job.arrival_time_s,
                duration_hours=job.duration_hours,
                workload=job.workload,
            )
        )
    return Trace(
        name=f"{trace.name}+multitask{multi_task_fraction:.0%}",
        jobs=sort_jobs_by_arrival(new_jobs),
    )


# ---------------------------------------------------------------------------
# Named builders for the batch layer (picklable, reseedable TraceSpecs)
# ---------------------------------------------------------------------------


def alibaba_multi_gpu_trace(
    num_jobs: int, multi_gpu_fraction: float, seed: int = 0
) -> Trace:
    """Figure 6's remixed trace as a single named builder.

    Synthesizes the Alibaba-like trace and applies
    :func:`remix_multi_gpu`, both from ``seed`` — byte-identical to
    remixing :func:`synthesize_alibaba_trace` inline, but expressible as
    a :class:`~repro.sim.batch.TraceSpec` so sweeps pickle small, cache
    by content, and re-seed across trials.
    """
    base = synthesize_alibaba_trace(num_jobs, seed=seed)
    return remix_multi_gpu(base, multi_gpu_fraction, seed=seed)


def alibaba_multi_task_trace(
    num_jobs: int, multi_task_fraction: float, seed: int = 0
) -> Trace:
    """Figure 7's remixed trace as a single named builder (see above)."""
    base = synthesize_alibaba_trace(num_jobs, seed=seed)
    return remix_multi_task(base, multi_task_fraction, seed=seed)


def alibaba_replay_trace(
    num_jobs: int = 10_000,
    seed: int = 0,
    arrival_rate_per_hour: float = 40.0,
    clip_hours: float | None = 24.0,
) -> Trace:
    """Replay-scale Alibaba trace (default 10k jobs) for throughput work.

    The Table 13 evaluation traces arrive at 3 jobs/hour, which at
    10k jobs would stretch the simulated horizon past 3000 hours while
    keeping the cluster nearly idle.  The replay variant compresses the
    same job population into a dense schedule: an elevated arrival rate
    sustains a wide concurrent task pool (the regime the vectorized
    packing kernel targets), and the Pareto duration tail is clipped so
    the simulated horizon is set by the arrival span, not by one
    thousand-hour straggler.  Durations come from an isolated RNG draw
    so the arrival/demand stream matches ``synthesize_alibaba_trace``'s
    for the same seed.
    """
    rng = np.random.default_rng(seed)
    durations = AlibabaDurationModel().sample(rng, num_jobs)
    if clip_hours is not None:
        durations = np.minimum(durations, clip_hours)
    return synthesize_alibaba_trace(
        num_jobs,
        seed=seed,
        arrival_rate_per_hour=arrival_rate_per_hour,
        durations_hours=durations,
        name=f"alibaba-replay-{num_jobs}",
    )


def gavel_replay_trace(
    num_jobs: int = 10_000,
    seed: int = 0,
    arrival_rate_per_hour: float = 40.0,
    clip_hours: float | None = 24.0,
) -> Trace:
    """Replay-scale Gavel-duration trace (see :func:`alibaba_replay_trace`).

    Alibaba arrivals/demands with Gavel durations from the offset RNG
    stream (``seed + 7``), exactly like :func:`alibaba_gavel_trace`,
    clipped and densified the same way as the Alibaba replay variant.
    """
    from repro.workloads.gavel import sample_gavel_durations_hours

    rng = np.random.default_rng(seed + 7)
    durations = sample_gavel_durations_hours(rng, num_jobs)
    if clip_hours is not None:
        durations = np.minimum(durations, clip_hours)
    return synthesize_alibaba_trace(
        num_jobs,
        seed=seed,
        arrival_rate_per_hour=arrival_rate_per_hour,
        durations_hours=durations,
        name=f"gavel-replay-{num_jobs}",
    )


def alibaba_gavel_trace(num_jobs: int, seed: int = 0) -> Trace:
    """Table 14's trace: Alibaba arrivals/demands, Gavel durations.

    Durations are drawn with an offset RNG stream (``seed + 7``) so they
    are independent of the arrival/demand stream, exactly as the Table 14
    driver always constructed it.
    """
    from repro.workloads.gavel import sample_gavel_durations_hours

    rng = np.random.default_rng(seed + 7)
    durations = sample_gavel_durations_hours(rng, num_jobs)
    return synthesize_alibaba_trace(
        num_jobs,
        seed=seed,
        durations_hours=durations,
        name=f"alibaba-gavel-{num_jobs}",
    )
