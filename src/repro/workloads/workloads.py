"""The ten evaluated batch workloads (Table 7).

Each workload defines per-task resource demands (with the CPU demand split
between P3 and C7i/R7i families, per the Table 7 footnote: C7i/R7i CPUs are
higher-frequency, so CPU jobs need fewer of them), migration delays
(checkpoint + launch), and the number of tasks per job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.resources import ResourceVector
from repro.cluster.task import DEFAULT_FAMILY, Job, MigrationDelays, make_job


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Static description of one Table-7 workload.

    Attributes:
        name: Workload name, e.g. ``"GPT2"`` — keys interference lookups.
        description: Human-readable application description.
        gpus: GPUs per task.
        cpus_p3: CPU cores per task on P3 instances.
        cpus_other: CPU cores per task on C7i/R7i (Table 7 parenthesised
            value; equals ``cpus_p3`` when no parenthesis is given).
        ram_gb: RAM per task in GB.
        checkpoint_s: Task checkpoint delay, seconds.
        launch_s: Task launch delay, seconds.
        tasks_per_job: Number of (identical, interdependent) tasks per job.
    """

    name: str
    description: str
    gpus: float
    cpus_p3: float
    cpus_other: float
    ram_gb: float
    checkpoint_s: float
    launch_s: float
    tasks_per_job: int = 1

    def demands(self) -> Mapping[str, ResourceVector]:
        """Per-family demand vectors (P3 vs compute/memory families)."""
        other = ResourceVector(self.gpus, self.cpus_other, self.ram_gb)
        return {
            "p3": ResourceVector(self.gpus, self.cpus_p3, self.ram_gb),
            "c7i": other,
            "r7i": other,
            DEFAULT_FAMILY: ResourceVector(self.gpus, self.cpus_p3, self.ram_gb),
        }

    def migration(self) -> MigrationDelays:
        return MigrationDelays(checkpoint_s=self.checkpoint_s, launch_s=self.launch_s)

    @property
    def is_gpu_workload(self) -> bool:
        return self.gpus > 0

    def make_job(
        self,
        duration_hours: float,
        arrival_time_s: float = 0.0,
        num_tasks: int | None = None,
        job_id: str | None = None,
        deadline_hours: float | None = None,
    ) -> Job:
        """Instantiate a job of this workload."""
        return make_job(
            workload=self.name,
            demands=self.demands(),
            duration_hours=duration_hours,
            arrival_time_s=arrival_time_s,
            num_tasks=num_tasks if num_tasks is not None else self.tasks_per_job,
            migration=self.migration(),
            job_id=job_id,
            deadline_hours=deadline_hours,
        )


#: Table 7, transcribed.  (name, description, gpus, cpus_p3, cpus_other,
#: ram_gb, checkpoint_s, launch_s, tasks_per_job)
TABLE7_WORKLOADS: tuple[WorkloadSpec, ...] = (
    WorkloadSpec("ResNet18-2", "ML - Image Classification (2 tasks)", 1, 4, 4, 24, 2, 80, 2),
    WorkloadSpec("ResNet18-4", "ML - Image Classification (4 tasks)", 1, 4, 4, 24, 2, 80, 4),
    WorkloadSpec("ViT", "ML - Image Classification", 2, 8, 8, 60, 3, 143, 1),
    WorkloadSpec("CycleGAN", "ML - I2I Translation", 1, 4, 4, 10, 7, 2, 1),
    WorkloadSpec("GPT2", "ML - Language Modeling", 4, 4, 4, 10, 30, 15, 1),
    WorkloadSpec("GraphSAGE", "ML - Graph Embedding", 1, 8, 8, 50, 2, 160, 1),
    WorkloadSpec("GCN", "ML - Graph Embedding", 0, 12, 6, 40, 2, 28, 1),
    WorkloadSpec("A3C", "ML - RL", 0, 10, 4, 8, 2, 10, 1),
    WorkloadSpec("Diamond", "BioInfo - Sequence Alignment", 0, 14, 8, 16, 8, 12, 1),
    WorkloadSpec("OpenFOAM", "Physics - CFD", 0, 8, 6, 8, 21, 1, 1),
)

_BY_NAME = {w.name: w for w in TABLE7_WORKLOADS}

#: GPU workloads grouped by per-task GPU count, used when labelling
#: trace-derived jobs with a Table-7 workload (§6.1: "We assign each job a
#: workload from Table 7 to simulate the job's migration overhead and
#: co-location throughput").
GPU_WORKLOADS_BY_COUNT: Mapping[int, tuple[str, ...]] = {
    1: ("ResNet18-2", "CycleGAN", "GraphSAGE"),
    2: ("ViT",),
    4: ("GPT2",),
    8: ("GPT2",),  # no 8-GPU workload in Table 7; GPT2 is the largest GPU profile
}

CPU_WORKLOADS: tuple[str, ...] = ("GCN", "A3C", "Diamond", "OpenFOAM")


def workload(name: str) -> WorkloadSpec:
    """Look up a Table-7 workload by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def workload_names() -> list[str]:
    return [w.name for w in TABLE7_WORKLOADS]
