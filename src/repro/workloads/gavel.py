"""Gavel-style job duration model (§6.1, Table 9).

To better represent long-running ML training jobs, the paper also samples
durations with the approach from Gavel [45]: each duration is 10^x minutes
where x ~ U[1.5, 3] with probability 0.8 and x ~ U[3, 4] with probability
0.2.  The resulting distribution matches Table 9's Gavel row analytically:
mean 16.7 h, median 4.5 h, P80 16.4 h, P95 93.7 h.
"""

from __future__ import annotations

import math

import numpy as np

#: Mixture components: (probability, x_low, x_high) for 10^x minutes.
GAVEL_MIXTURE: tuple[tuple[float, float, float], ...] = (
    (0.8, 1.5, 3.0),
    (0.2, 3.0, 4.0),
)


def sample_gavel_durations_hours(
    rng: np.random.Generator, size: int
) -> np.ndarray:
    """Sample ``size`` job durations (hours) from the Gavel model."""
    probs = np.array([p for p, _, _ in GAVEL_MIXTURE])
    component = rng.choice(len(GAVEL_MIXTURE), size=size, p=probs)
    xs = np.empty(size)
    for idx, (_, lo, hi) in enumerate(GAVEL_MIXTURE):
        mask = component == idx
        xs[mask] = rng.uniform(lo, hi, size=int(mask.sum()))
    minutes = np.power(10.0, xs)
    return minutes / 60.0


def gavel_mean_hours() -> float:
    """Closed-form mean of the Gavel duration model, in hours.

    E[10^X] for X ~ U(a, b) is (10^b − 10^a) / ((b − a) ln 10).
    """
    total_minutes = 0.0
    for prob, lo, hi in GAVEL_MIXTURE:
        total_minutes += prob * (10.0**hi - 10.0**lo) / ((hi - lo) * math.log(10.0))
    return total_minutes / 60.0


def gavel_quantile_hours(q: float) -> float:
    """Closed-form quantile of the Gavel model, in hours."""
    if not 0.0 <= q < 1.0:
        raise ValueError(f"q must be in [0, 1), got {q}")
    acc = 0.0
    for prob, lo, hi in GAVEL_MIXTURE:
        if q <= acc + prob:
            frac = (q - acc) / prob
            x = lo + frac * (hi - lo)
            return 10.0**x / 60.0
        acc += prob
    raise AssertionError("unreachable")  # pragma: no cover
