"""Trace container: an ordered collection of jobs plus summary statistics.

A trace is the unit of input to the simulator and the experiment drivers.
Traces can be sliced (the artifact's E2 uses "the first 200 jobs of the
Alibaba trace"), remixed (Figures 6 and 7), and serialized to JSON for
inspection and caching.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.cluster.task import Job, MigrationDelays, Task


@dataclass(frozen=True)
class Trace:
    """An arrival-ordered job sequence."""

    name: str
    jobs: tuple[Job, ...] = field(default=())

    def __post_init__(self) -> None:
        arrivals = [j.arrival_time_s for j in self.jobs]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError(f"trace {self.name!r} is not sorted by arrival time")

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def head(self, n: int) -> "Trace":
        """The first ``n`` jobs (artifact experiment E2 style)."""
        return Trace(name=f"{self.name}[:{n}]", jobs=self.jobs[:n])

    def filter(self, predicate: Callable[[Job], bool]) -> "Trace":
        return Trace(
            name=f"{self.name}[filtered]",
            jobs=tuple(j for j in self.jobs if predicate(j)),
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def num_tasks(self) -> int:
        return sum(j.num_tasks for j in self.jobs)

    def duration_quantiles_hours(
        self, qs: Sequence[float] = (0.5, 0.8, 0.95)
    ) -> dict[float, float]:
        durations = np.array([j.duration_hours for j in self.jobs])
        return {q: float(np.quantile(durations, q)) for q in qs}

    def mean_duration_hours(self) -> float:
        return float(np.mean([j.duration_hours for j in self.jobs]))

    def gpu_demand_composition(self) -> dict[int, float]:
        """Fraction of jobs by per-task GPU demand (Table 8 shape)."""
        counts: dict[int, int] = {}
        for job in self.jobs:
            gpus = int(round(job.tasks[0].max_demand.gpus))
            counts[gpus] = counts.get(gpus, 0) + 1
        total = max(1, len(self.jobs))
        return {g: c / total for g, c in sorted(counts.items())}

    def multi_task_fraction(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(1 for j in self.jobs if j.is_multi_task) / len(self.jobs)

    def span_hours(self) -> float:
        """Time between first arrival and last arrival, in hours."""
        if not self.jobs:
            return 0.0
        return (self.jobs[-1].arrival_time_s - self.jobs[0].arrival_time_s) / 3600.0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "jobs": [
                {
                    "job_id": j.job_id,
                    "workload": j.workload,
                    "arrival_time_s": j.arrival_time_s,
                    "duration_hours": j.duration_hours,
                    "tasks": [
                        {
                            "task_id": t.task_id,
                            "workload": t.workload,
                            "demands": {
                                fam: list(vec.as_tuple())
                                for fam, vec in t.demands.items()
                            },
                            "checkpoint_s": t.migration.checkpoint_s,
                            "launch_s": t.migration.launch_s,
                        }
                        for t in j.tasks
                    ],
                }
                for j in self.jobs
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        payload = json.loads(text)
        jobs = []
        for jd in payload["jobs"]:
            tasks = tuple(
                Task(
                    task_id=td["task_id"],
                    job_id=jd["job_id"],
                    workload=td["workload"],
                    demands={
                        fam: ResourceVector(*vals)
                        for fam, vals in td["demands"].items()
                    },
                    migration=MigrationDelays(td["checkpoint_s"], td["launch_s"]),
                )
                for td in jd["tasks"]
            )
            jobs.append(
                Job(
                    job_id=jd["job_id"],
                    tasks=tasks,
                    arrival_time_s=jd["arrival_time_s"],
                    duration_hours=jd["duration_hours"],
                    workload=jd["workload"],
                )
            )
        return cls(name=payload["name"], jobs=tuple(jobs))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_json(Path(path).read_text())


def poisson_arrival_times(
    n: int, mean_interarrival_s: float, rng: np.random.Generator
) -> list[float]:
    """Arrival times of a Poisson process (exponential inter-arrivals, §6.1)."""
    if n <= 0:
        return []
    gaps = rng.exponential(mean_interarrival_s, size=n)
    return list(np.cumsum(gaps))


def sort_jobs_by_arrival(jobs: Iterable[Job]) -> tuple[Job, ...]:
    return tuple(sorted(jobs, key=lambda j: (j.arrival_time_s, j.job_id)))


def _validate_deadline_knobs(
    deadline_fraction: float, deadline_slack_range: tuple[float, float]
) -> None:
    if not 0.0 <= deadline_fraction <= 1.0:
        raise ValueError(
            f"deadline_fraction must be in [0, 1], got {deadline_fraction}"
        )
    lo, hi = deadline_slack_range
    if not 0.0 < lo <= hi:
        raise ValueError(f"invalid deadline slack range {deadline_slack_range}")


def sample_deadlines(
    jobs: Sequence[Job],
    rng: np.random.Generator,
    deadline_fraction: float,
    deadline_slack_range: tuple[float, float],
) -> list[Job]:
    """Attach sampled ``deadline_hours`` to ``deadline_fraction`` of jobs.

    Shared tail of the deadline-bearing trace builders: each job draws an
    inclusion uniform and a slack factor (``deadline_hours = duration ×
    slack``, clock starting at arrival).  Both uniforms are drawn for
    *every* job whenever the fraction is positive, so sweeping the
    fraction or the slack range at a fixed seed keeps the draw stream —
    and therefore which jobs fall under the fraction threshold — aligned
    across sweep points.  A fraction of ``0.0`` consumes nothing from
    ``rng`` and returns the jobs untouched, keeping legacy traces
    byte-identical.
    """
    from dataclasses import replace

    _validate_deadline_knobs(deadline_fraction, deadline_slack_range)
    if deadline_fraction <= 0.0:
        return list(jobs)
    lo, hi = deadline_slack_range
    out = []
    for job in jobs:
        take = float(rng.random()) < deadline_fraction
        slack = float(rng.uniform(lo, hi))
        if take:
            job = replace(job, deadline_hours=job.duration_hours * slack)
        out.append(job)
    return out
