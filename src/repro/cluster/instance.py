"""Instance types and provisioned instances.

An :class:`InstanceType` mirrors a cloud SKU: a resource capacity plus an
hourly on-demand price (§2.3).  A provisioned :class:`Instance` is a concrete
machine of some type with a stable identity, used as the bin in Eva's
packing algorithms and as the billing unit in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.resources import ResourceVector

#: Family name reserved for the zero-cost, zero-capacity ghost type used by
#: the ILP formulation (§4.1) to model "instance not provisioned".
GHOST_FAMILY = "ghost"


@dataclass(frozen=True, slots=True)
class InstanceType:
    """A cloud instance SKU.

    Attributes:
        name: SKU name, e.g. ``"p3.2xlarge"``.
        family: Instance family, e.g. ``"p3"``; tasks may declare different
            resource demands per family (Table 7 footnote).
        capacity: Resource capacity of one instance of this type.
        hourly_cost: On-demand price in $/hr.
    """

    name: str
    family: str
    capacity: ResourceVector
    hourly_cost: float

    def __post_init__(self) -> None:
        if self.hourly_cost < 0:
            raise ValueError(f"hourly_cost must be >= 0, got {self.hourly_cost}")

    @property
    def is_ghost(self) -> bool:
        """True for the ILP's zero-cost placeholder type."""
        return self.family == GHOST_FAMILY

    def cost_per_second(self) -> float:
        return self.hourly_cost / 3600.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InstanceType({self.name}, {self.capacity}, ${self.hourly_cost:g}/hr)"


def ghost_instance_type() -> InstanceType:
    """The zero-cost, zero-capacity type from the ILP formulation (§4.1)."""
    return InstanceType(
        name="ghost", family=GHOST_FAMILY, capacity=ResourceVector.zero(), hourly_cost=0.0
    )


class _InstanceCounter:
    """Global id source for :func:`fresh_instance`.

    Iterator-compatible with the ``itertools.count`` it replaces, plus a
    readable :attr:`value` (ids handed out so far) so callers that replay
    a memoized packing can advance the counter by exactly the number of
    ids the real computation would have minted, keeping every later id —
    and therefore every downstream tie-break on instance id — identical.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def __iter__(self) -> "_InstanceCounter":
        return self

    def __next__(self) -> int:
        self.value += 1
        return self.value

    def advance(self, count: int) -> None:
        """Consume ``count`` ids without constructing instances."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.value += count


_instance_counter = _InstanceCounter()


@dataclass(eq=False, slots=True)
class Instance:
    """A provisioned (or planned) instance of a given type.

    Identity semantics: two ``Instance`` objects are equal only if they are
    the same object; ``instance_id`` provides a stable, human-readable key.
    """

    instance_type: InstanceType
    instance_id: str = field(default="")

    def __post_init__(self) -> None:
        if not self.instance_id:
            self.instance_id = f"i-{next(_instance_counter):06d}"

    @property
    def capacity(self) -> ResourceVector:
        return self.instance_type.capacity

    @property
    def hourly_cost(self) -> float:
        return self.instance_type.hourly_cost

    def __hash__(self) -> int:
        return hash(self.instance_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and other.instance_id == self.instance_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Instance({self.instance_id}, {self.instance_type.name})"


def fresh_instance(instance_type: InstanceType) -> Instance:
    """Allocate a new instance object with a unique id."""
    return Instance(instance_type=instance_type)
