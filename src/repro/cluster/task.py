"""Tasks and jobs.

A job submitted to Eva consists of one or more tasks (§3).  Each task has a
resource demand per instance family (Table 7 shows CPU demands that differ
between P3 and C7i/R7i instances), a standalone throughput baseline, and
per-workload migration delays (checkpoint + launch, Table 7).

``Task`` and ``Job`` are immutable *specifications*; all mutable runtime
state (progress, placement, observed throughput) lives in the simulator or
runtime, keeping scheduling algorithms purely functional over snapshots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cluster.resources import ResourceVector

#: Demand-map key used when a task does not specialize its demand by family.
DEFAULT_FAMILY = "*"


@dataclass(frozen=True, slots=True)
class MigrationDelays:
    """Per-task migration delay components, in seconds (Table 1 / Table 7).

    ``checkpoint_s`` is paid on the source instance when a task is stopped;
    ``launch_s`` is paid on the destination instance before the task resumes.
    """

    checkpoint_s: float
    launch_s: float

    def total_s(self) -> float:
        return self.checkpoint_s + self.launch_s

    def total_hours(self) -> float:
        return self.total_s() / 3600.0


@dataclass(frozen=True, slots=True)
class Task:
    """A schedulable unit of work.

    Attributes:
        task_id: Unique id, stable across migrations.
        job_id: Id of the owning job; tasks of a multi-task job share it.
        workload: Workload name (Table 7) — keys interference lookups.
        demands: Mapping from instance family to demand vector.  The
            ``"*"`` key (``DEFAULT_FAMILY``) is the fallback demand.
        migration: Checkpoint/launch delays for this task.
    """

    task_id: str
    job_id: str
    workload: str
    demands: Mapping[str, ResourceVector]
    migration: MigrationDelays = field(default=MigrationDelays(8.0, 47.0))

    def __post_init__(self) -> None:
        if not self.demands:
            raise ValueError(f"task {self.task_id} has no demand vectors")

    def demand_for(self, family: str) -> ResourceVector:
        """Demand vector when running on an instance of ``family``.

        Falls back to the ``"*"`` entry, then to any entry (tasks always
        have at least one demand vector).
        """
        if family in self.demands:
            return self.demands[family]
        if DEFAULT_FAMILY in self.demands:
            return self.demands[DEFAULT_FAMILY]
        return next(iter(self.demands.values()))

    @property
    def max_demand(self) -> ResourceVector:
        """Element-wise max over family demands (used for quick sanity checks)."""
        gpus = max(d.gpus for d in self.demands.values())
        cpus = max(d.cpus for d in self.demands.values())
        ram = max(d.ram_gb for d in self.demands.values())
        return ResourceVector(gpus, cpus, ram)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.task_id}, {self.workload})"


@dataclass(frozen=True, slots=True)
class Job:
    """A batch job: one or more tasks plus arrival/duration metadata.

    Attributes:
        job_id: Unique id.
        tasks: The job's tasks.  All tasks of a data-parallel job are
            interdependent: the job's throughput is the minimum of its
            tasks' throughputs (§4.4).
        arrival_time_s: Submission time, seconds since trace start.
        duration_hours: Standalone running time (at throughput 1.0) of the
            job.  Total work per task equals this duration; interference
            stretches wall-clock time proportionally.
        workload: Workload name shared by the tasks.
        deadline_hours: Optional completion SLO, measured from arrival.
            Jobs that carry one trigger
            :class:`~repro.core.protocol.DeadlineApproaching`
            observations as the deadline nears; ``None`` (the default)
            means no SLO.
    """

    job_id: str
    tasks: Sequence[Task]
    arrival_time_s: float
    duration_hours: float
    workload: str
    deadline_hours: float | None = None

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError(f"job {self.job_id} has no tasks")
        if self.duration_hours <= 0:
            raise ValueError(f"job {self.job_id} duration must be > 0")
        if self.deadline_hours is not None and self.deadline_hours <= 0:
            raise ValueError(f"job {self.job_id} deadline must be > 0")
        for task in self.tasks:
            if task.job_id != self.job_id:
                raise ValueError(
                    f"task {task.task_id} has job_id {task.job_id!r}, expected {self.job_id!r}"
                )

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def is_multi_task(self) -> bool:
        return len(self.tasks) > 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job({self.job_id}, {self.workload}, tasks={self.num_tasks}, "
            f"dur={self.duration_hours:g}h)"
        )


_job_counter = itertools.count(1)


def make_job(
    workload: str,
    demands: Mapping[str, ResourceVector],
    duration_hours: float,
    arrival_time_s: float = 0.0,
    num_tasks: int = 1,
    migration: MigrationDelays | None = None,
    job_id: str | None = None,
    deadline_hours: float | None = None,
) -> Job:
    """Convenience constructor building a job with ``num_tasks`` identical tasks."""
    jid = job_id if job_id is not None else f"job-{next(_job_counter):05d}"
    mig = migration if migration is not None else MigrationDelays(8.0, 47.0)
    tasks = tuple(
        Task(
            task_id=f"{jid}/t{idx}",
            job_id=jid,
            workload=workload,
            demands=dict(demands),
            migration=mig,
        )
        for idx in range(num_tasks)
    )
    return Job(
        job_id=jid,
        tasks=tasks,
        arrival_time_s=arrival_time_s,
        duration_hours=duration_hours,
        workload=workload,
        deadline_hours=deadline_hours,
    )
