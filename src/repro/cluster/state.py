"""Cluster snapshots and target configurations.

The scheduler interface (§3) is snapshot → target configuration:

* :class:`ClusterSnapshot` is a read-only view of the cluster at a
  scheduling round: which tasks exist, where they run, what each job looks
  like, and what throughput has been observed.
* :class:`TargetConfiguration` is the scheduler's decision: a set of
  instances (existing or to-be-launched) and the task-to-instance mapping.

The simulator (and the runtime's Provisioner/Executor) *diffs* the target
against the snapshot to derive operations: launch/terminate instances and
start/migrate tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cluster.instance import Instance, InstanceType
from repro.cluster.resources import ResourceVector
from repro.cluster.task import Job, Task


def tasks_fit_on_type(tasks: Iterable[Task], instance_type: InstanceType) -> bool:
    """True if the summed (family-specific) demand of ``tasks`` fits the type."""
    total = ResourceVector.sum(t.demand_for(instance_type.family) for t in tasks)
    return total.fits_within(instance_type.capacity)


def remaining_capacity(
    instance_type: InstanceType, tasks: Iterable[Task]
) -> ResourceVector:
    """Capacity left on an instance of ``instance_type`` hosting ``tasks``."""
    used = ResourceVector.sum(t.demand_for(instance_type.family) for t in tasks)
    return instance_type.capacity - used


@dataclass(frozen=True, slots=True)
class InstanceState:
    """One provisioned instance and the tasks currently assigned to it."""

    instance: Instance
    task_ids: frozenset[str]

    @property
    def instance_id(self) -> str:
        return self.instance.instance_id

    @property
    def instance_type(self) -> InstanceType:
        return self.instance.instance_type


@dataclass(frozen=True)
class ClusterSnapshot:
    """Read-only view of the cluster at one scheduling round.

    Attributes:
        time_s: Current time (seconds since trace start).
        tasks: All live tasks (queued or running), keyed by task id.
        jobs: Owning jobs, keyed by job id.
        instances: Current instances with their assignments.
    """

    time_s: float
    tasks: Mapping[str, Task]
    jobs: Mapping[str, Job]
    instances: Sequence[InstanceState]

    def task(self, task_id: str) -> Task:
        return self.tasks[task_id]

    def job_of(self, task: Task) -> Job:
        return self.jobs[task.job_id]

    def assigned_task_ids(self) -> set[str]:
        assigned: set[str] = set()
        for state in self.instances:
            assigned.update(state.task_ids)
        return assigned

    def unassigned_tasks(self) -> list[Task]:
        assigned = self.assigned_task_ids()
        return [t for tid, t in self.tasks.items() if tid not in assigned]

    def instance_of(self, task_id: str) -> InstanceState | None:
        for state in self.instances:
            if task_id in state.task_ids:
                return state
        return None

    def co_located_tasks(self, task_id: str) -> list[Task]:
        """Tasks sharing an instance with ``task_id`` (excluding itself)."""
        state = self.instance_of(task_id)
        if state is None:
            return []
        # Sorted so downstream packing/evaluation decisions never depend
        # on hash-randomized frozenset iteration order (cross-process
        # determinism).
        return [self.tasks[tid] for tid in sorted(state.task_ids) if tid != task_id]


@dataclass(frozen=True, slots=True)
class TargetInstance:
    """One instance in a target configuration.

    ``instance`` may be an existing instance (same id as in the snapshot,
    meaning "keep it") or a fresh one (meaning "launch a new instance of
    this type").
    """

    instance: Instance
    task_ids: frozenset[str]

    @property
    def instance_id(self) -> str:
        return self.instance.instance_id

    @property
    def instance_type(self) -> InstanceType:
        return self.instance.instance_type

    @property
    def hourly_cost(self) -> float:
        return self.instance.hourly_cost


@dataclass(frozen=True)
class TargetConfiguration:
    """A scheduler's decision for the next period.

    Instances absent from the target (relative to the snapshot) are
    terminated; tasks mapped to a different instance than in the snapshot
    are migrated.  Tasks absent from the target stay queued.
    """

    instances: tuple[TargetInstance, ...] = field(default=())

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[Instance, Iterable[str]]]
    ) -> "TargetConfiguration":
        return cls(
            instances=tuple(
                TargetInstance(instance=inst, task_ids=frozenset(tids))
                for inst, tids in pairs
            )
        )

    def hourly_cost(self) -> float:
        """Provisioning cost per hour of this configuration."""
        return sum(ti.hourly_cost for ti in self.instances)

    def assignment(self) -> dict[str, str]:
        """Mapping task id → instance id."""
        mapping: dict[str, str] = {}
        for ti in self.instances:
            for tid in sorted(ti.task_ids):
                if tid in mapping:
                    raise ValueError(f"task {tid} assigned to two instances")
                mapping[tid] = ti.instance_id
        return mapping

    def instance_ids(self) -> set[str]:
        return {ti.instance_id for ti in self.instances}

    def validate(self, snapshot: ClusterSnapshot) -> None:
        """Check structural invariants against a snapshot.

        Raises ``ValueError`` on: unknown task ids, duplicate assignment,
        or resource over-subscription on any instance.
        """
        seen: set[str] = set()
        for ti in self.instances:
            tasks = []
            for tid in sorted(ti.task_ids):
                if tid not in snapshot.tasks:
                    raise ValueError(f"target assigns unknown task {tid}")
                if tid in seen:
                    raise ValueError(f"task {tid} assigned to two instances")
                seen.add(tid)
                tasks.append(snapshot.tasks[tid])
            if not tasks_fit_on_type(tasks, ti.instance_type):
                raise ValueError(
                    f"instance {ti.instance_id} ({ti.instance_type.name}) "
                    f"over-subscribed by tasks {sorted(ti.task_ids)}"
                )


@dataclass(frozen=True, slots=True)
class ConfigurationDiff:
    """Operations needed to move from a snapshot to a target configuration."""

    launches: tuple[TargetInstance, ...]
    terminations: tuple[str, ...]  # instance ids
    migrations: tuple[tuple[str, str | None, str], ...]  # (task, from, to)
    unchanged_tasks: tuple[str, ...]

    @property
    def num_migrations(self) -> int:
        """Count of tasks moved between two instances (not first placements)."""
        return sum(1 for _, src, _ in self.migrations if src is not None)

    @property
    def num_placements(self) -> int:
        """Count of first-time task placements (queued → instance)."""
        return sum(1 for _, src, _ in self.migrations if src is None)


def diff_configuration(
    snapshot: ClusterSnapshot, target: TargetConfiguration
) -> ConfigurationDiff:
    """Compute launch/terminate/migrate operations between snapshot and target."""
    current_assignment: dict[str, str] = {}
    current_instances: set[str] = set()
    for state in snapshot.instances:
        current_instances.add(state.instance_id)
        for tid in sorted(state.task_ids):
            current_assignment[tid] = state.instance_id

    target_assignment = target.assignment()
    target_instances = target.instance_ids()

    launches = tuple(
        ti for ti in target.instances if ti.instance_id not in current_instances
    )
    terminations = tuple(sorted(current_instances - target_instances))

    migrations: list[tuple[str, str | None, str]] = []
    unchanged: list[str] = []
    for tid, dst in sorted(target_assignment.items()):
        src = current_assignment.get(tid)
        if src == dst:
            unchanged.append(tid)
        else:
            migrations.append((tid, src, dst))

    return ConfigurationDiff(
        launches=launches,
        terminations=terminations,
        migrations=tuple(migrations),
        unchanged_tasks=tuple(unchanged),
    )
