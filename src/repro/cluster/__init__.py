"""Cluster substrate: resources, tasks, jobs, instances, snapshots."""

from repro.cluster.instance import (
    GHOST_FAMILY,
    Instance,
    InstanceType,
    fresh_instance,
    ghost_instance_type,
)
from repro.cluster.resources import RESOURCE_NAMES, ResourceVector
from repro.cluster.state import (
    ClusterSnapshot,
    ConfigurationDiff,
    InstanceState,
    TargetConfiguration,
    TargetInstance,
    diff_configuration,
    remaining_capacity,
    tasks_fit_on_type,
)
from repro.cluster.task import DEFAULT_FAMILY, Job, MigrationDelays, Task, make_job

__all__ = [
    "RESOURCE_NAMES",
    "ResourceVector",
    "GHOST_FAMILY",
    "Instance",
    "InstanceType",
    "fresh_instance",
    "ghost_instance_type",
    "ClusterSnapshot",
    "ConfigurationDiff",
    "InstanceState",
    "TargetConfiguration",
    "TargetInstance",
    "diff_configuration",
    "remaining_capacity",
    "tasks_fit_on_type",
    "DEFAULT_FAMILY",
    "Job",
    "MigrationDelays",
    "Task",
    "make_job",
]
