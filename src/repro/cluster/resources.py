"""Multi-dimensional resource vectors (GPU, CPU, RAM).

The paper schedules tasks with three resource dimensions (§3): GPU count,
CPU cores, and RAM in GB.  ``ResourceVector`` is the shared currency between
tasks (demands), instance types (capacities), and the packing algorithms.

Vectors are immutable value objects supporting element-wise arithmetic and
the partial order used for feasibility checks (``fits_within``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

#: Resource dimension names, in canonical order.
RESOURCE_NAMES = ("gpus", "cpus", "ram_gb")

#: Tolerance for floating-point capacity comparisons.  Demands and
#: capacities are typically small integers, but throughput-weighted
#: arithmetic can introduce representation error.
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """An immutable (gpus, cpus, ram_gb) triple.

    Supports ``+``, ``-``, scalar ``*``, comparison helpers, and iteration
    in the canonical ``RESOURCE_NAMES`` order.
    """

    gpus: float = 0.0
    cpus: float = 0.0
    ram_gb: float = 0.0

    def __post_init__(self) -> None:
        for name in RESOURCE_NAMES:
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"resource {name!r} must be >= 0, got {value}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "ResourceVector":
        """Return the all-zero vector (capacity of the ghost instance type)."""
        return cls(0.0, 0.0, 0.0)

    @classmethod
    def of(cls, gpus: float = 0, cpus: float = 0, ram_gb: float = 0) -> "ResourceVector":
        """Readable keyword constructor: ``ResourceVector.of(gpus=1, cpus=4)``."""
        return cls(float(gpus), float(cpus), float(ram_gb))

    @classmethod
    def sum(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Element-wise sum of an iterable of vectors (empty sum is zero)."""
        gpus = cpus = ram = 0.0
        for v in vectors:
            gpus += v.gpus
            cpus += v.cpus
            ram += v.ram_gb
        return cls(gpus, cpus, ram)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.gpus + other.gpus,
            self.cpus + other.cpus,
            self.ram_gb + other.ram_gb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise difference, clamped at zero.

        Clamping keeps "remaining capacity" vectors valid in the presence
        of floating-point error; callers that need strict subtraction
        should check ``fits_within`` first.
        """
        return ResourceVector(
            max(0.0, self.gpus - other.gpus),
            max(0.0, self.cpus - other.cpus),
            max(0.0, self.ram_gb - other.ram_gb),
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(self.gpus * scalar, self.cpus * scalar, self.ram_gb * scalar)

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True if this demand fits inside ``capacity`` in every dimension."""
        return (
            self.gpus <= capacity.gpus + _EPS
            and self.cpus <= capacity.cpus + _EPS
            and self.ram_gb <= capacity.ram_gb + _EPS
        )

    def dominates(self, other: "ResourceVector") -> bool:
        """True if this vector is >= ``other`` in every dimension."""
        return other.fits_within(self)

    def is_zero(self) -> bool:
        """True if every dimension is (numerically) zero."""
        return self.gpus < _EPS and self.cpus < _EPS and self.ram_gb < _EPS

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[float]:
        yield self.gpus
        yield self.cpus
        yield self.ram_gb

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.gpus, self.cpus, self.ram_gb)

    def get(self, name: str) -> float:
        """Dimension accessor by canonical name ('gpus' | 'cpus' | 'ram_gb')."""
        if name not in RESOURCE_NAMES:
            raise KeyError(f"unknown resource {name!r}; expected one of {RESOURCE_NAMES}")
        return getattr(self, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.gpus:g}g {self.cpus:g}c {self.ram_gb:g}G]"
