"""Shared machinery for the reactive baseline schedulers (§6.1).

All four baselines are *reactive*: they keep every existing assignment,
place newly arrived (queued) tasks each round, and never migrate (the
right-sizing adaptation in Synergy/Owl being the one exception).  The
differences live entirely in :meth:`ReactiveScheduler.choose_placement`.

Baselines speak the legacy snapshot→target contract; the default
:meth:`~repro.core.interfaces.Scheduler.decide` routes them through the
:func:`~repro.core.protocol.diff_target` shim.  Each concrete baseline
declares its action vocabulary
(:attr:`~repro.core.interfaces.Scheduler.action_types`), which makes
"never migrates" a machine-checked contract: environments in validate
mode reject any decision that strays outside it.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.instance import Instance, InstanceType, fresh_instance
from repro.cluster.resources import ResourceVector
from repro.cluster.state import ClusterSnapshot, TargetConfiguration
from repro.cluster.task import Task
from repro.core.interfaces import Scheduler
from repro.core.reservation_price import ReservationPriceCalculator


@dataclass
class OpenInstance:
    """A live instance viewed as a mutable bin during one round."""

    instance: Instance
    tasks: list[Task]

    @property
    def instance_type(self) -> InstanceType:
        return self.instance.instance_type

    @property
    def hourly_cost(self) -> float:
        return self.instance.hourly_cost

    def used(self) -> ResourceVector:
        family = self.instance_type.family
        return ResourceVector.sum(t.demand_for(family) for t in self.tasks)

    def remaining(self) -> ResourceVector:
        return self.instance_type.capacity - self.used()

    def fits(self, task: Task) -> bool:
        return task.demand_for(self.instance_type.family).fits_within(
            self.remaining()
        )

    def add(self, task: Task) -> None:
        self.tasks.append(task)


class ReactiveScheduler(Scheduler):
    """Keep-everything, place-new-tasks scheduling skeleton."""

    def __init__(self, catalog: Sequence[InstanceType]):
        self.catalog = [it for it in catalog if not it.is_ghost]
        self.rp_calculator = ReservationPriceCalculator(self.catalog)

    # -- subclass hooks ----------------------------------------------------
    @abstractmethod
    def choose_placement(
        self,
        task: Task,
        open_instances: list[OpenInstance],
        snapshot: ClusterSnapshot,
    ) -> OpenInstance | InstanceType:
        """Pick an existing instance or an instance type to launch."""

    def placement_order(
        self, tasks: list[Task], snapshot: ClusterSnapshot
    ) -> list[Task]:
        """Order in which queued tasks are placed (default: by RP desc)."""
        return sorted(
            tasks, key=lambda t: (-self.rp_calculator.rp(t), t.task_id)
        )

    def release_inefficient(
        self, open_instances: list[OpenInstance], snapshot: ClusterSnapshot
    ) -> list[Task]:
        """Right-sizing hook: remove no-longer-worthwhile instances from
        ``open_instances`` and return their tasks for re-placement.

        The default keeps everything (No-Packing and Stratus never
        migrate); Synergy overrides this (see its module docstring).
        """
        return []

    # -- Scheduler contract -------------------------------------------------
    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        open_instances = [
            OpenInstance(
                instance=state.instance,
                tasks=[snapshot.tasks[tid] for tid in sorted(state.task_ids)],
            )
            for state in snapshot.instances
        ]
        to_place = snapshot.unassigned_tasks()
        to_place.extend(self.release_inefficient(open_instances, snapshot))
        for task in self.placement_order(to_place, snapshot):
            choice = self.choose_placement(task, open_instances, snapshot)
            if isinstance(choice, OpenInstance):
                if not choice.fits(task):
                    raise ValueError(
                        f"{self.name}: chose instance {choice.instance.instance_id} "
                        f"without capacity for {task.task_id}"
                    )
                choice.add(task)
            else:
                opened = OpenInstance(instance=fresh_instance(choice), tasks=[task])
                open_instances.append(opened)
        return TargetConfiguration.from_pairs(
            (oi.instance, (t.task_id for t in oi.tasks)) for oi in open_instances
        )

    # -- helpers -------------------------------------------------------------
    def cheapest_type_for(self, task: Task) -> InstanceType:
        """The task's reservation-price type (cheapest feasible)."""
        return self.rp_calculator.rp_type(task)

    def cheapest_type_for_pair(
        self, a: Task, b: Task
    ) -> InstanceType | None:
        """Cheapest type that can host both tasks together, if any."""
        best: InstanceType | None = None
        for itype in self.catalog:
            demand = a.demand_for(itype.family) + b.demand_for(itype.family)
            if demand.fits_within(itype.capacity):
                if best is None or itype.hourly_cost < best.hourly_cost:
                    best = itype
        return best
