"""No-Packing baseline (§6.1).

Each task is hosted on its own cheapest feasible instance — no
co-location, hence no interference and no migrations.  This is the
strategy of most existing cloud-based cluster managers and the
normalization baseline for every cost comparison in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.instance import InstanceType
from repro.cluster.state import ClusterSnapshot
from repro.cluster.task import Task
from repro.baselines.base import OpenInstance, ReactiveScheduler
from repro.core.protocol import AssignTask, LaunchInstance


class NoPackingScheduler(ReactiveScheduler):
    """One task per instance, on the task's reservation-price type."""

    name = "No-Packing"

    #: Strictly reactive: launches and first placements only.
    action_types = frozenset({LaunchInstance, AssignTask})

    def __init__(self, catalog: Sequence[InstanceType]):
        super().__init__(catalog)

    def choose_placement(
        self,
        task: Task,
        open_instances: list[OpenInstance],
        snapshot: ClusterSnapshot,
    ) -> OpenInstance | InstanceType:
        return self.cheapest_type_for(task)
