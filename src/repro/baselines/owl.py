"""Owl baseline (Tian et al., SoCC '22), adapted per §6.1.

Owl co-locates only task *pairs* whose profiled interference is low, and
it receives the full pairwise co-location profile up front (the paper
provides the measured profile exclusively to Owl — no online learning
required).  The §6.1 adaptation optimizes for cost-efficiency: candidate
pairs are considered in descending ratio of their throughput-normalized
reservation price to the cost of the cheapest instance type that can host
the pair.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.instance import InstanceType, fresh_instance
from repro.cluster.state import ClusterSnapshot, TargetConfiguration
from repro.cluster.task import Task
from repro.core.interfaces import Scheduler
from repro.core.protocol import (
    AssignTask,
    LaunchInstance,
    MigrateTask,
    TerminateInstance,
)
from repro.core.reservation_price import ReservationPriceCalculator
from repro.interference.model import InterferenceModel
from repro.baselines.base import OpenInstance

#: Pairs whose min pairwise throughput falls below this are "high
#: interference" and never co-located by Owl.
DEFAULT_INTERFERENCE_FLOOR = 0.90


class OwlScheduler(Scheduler):
    """Profile-driven pairwise packing, ranked by cost-efficiency."""

    name = "Owl"

    #: Pairwise placement plus the right-sizing adaptation (see
    #: :meth:`schedule`), which migrates stranded tasks off
    #: no-longer-worthwhile instances and terminates them.
    action_types = frozenset(
        {LaunchInstance, AssignTask, MigrateTask, TerminateInstance}
    )

    def __init__(
        self,
        catalog: Sequence[InstanceType],
        profile: InterferenceModel | None = None,
        interference_floor: float = DEFAULT_INTERFERENCE_FLOOR,
    ):
        self.catalog = [it for it in catalog if not it.is_ghost]
        self.rp_calculator = ReservationPriceCalculator(self.catalog)
        self.profile = profile or InterferenceModel()
        self.interference_floor = interference_floor

    # ------------------------------------------------------------------
    def _pair_metrics(
        self, a: Task, b: Task
    ) -> tuple[float, InstanceType] | None:
        """(TNRP/cost ratio, type) for a candidate pair, or None if unfit."""
        tput_a = self.profile.pairwise(a.workload, b.workload)
        tput_b = self.profile.pairwise(b.workload, a.workload)
        if min(tput_a, tput_b) < self.interference_floor:
            return None
        itype = self._cheapest_pair_type(a, b)
        if itype is None:
            return None
        tnrp = tput_a * self.rp_calculator.rp(a) + tput_b * self.rp_calculator.rp(b)
        if tnrp < itype.hourly_cost - 1e-9:
            return None  # not cost-efficient even before fragmentation
        return (tnrp / itype.hourly_cost, itype)

    def _cheapest_pair_type(self, a: Task, b: Task) -> InstanceType | None:
        best: InstanceType | None = None
        for itype in self.catalog:
            demand = a.demand_for(itype.family) + b.demand_for(itype.family)
            if demand.fits_within(itype.capacity):
                if best is None or itype.hourly_cost < best.hourly_cost:
                    best = itype
        return best

    def _instance_value(self, tasks: list[Task]) -> float:
        """Profile-based TNRP of an instance's task set."""
        total = 0.0
        for task in tasks:
            tput = 1.0
            for other in tasks:
                if other is not task:
                    tput *= self.profile.pairwise(task.workload, other.workload)
            total += tput * self.rp_calculator.rp(task)
        return total

    # ------------------------------------------------------------------
    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        open_instances = [
            OpenInstance(
                instance=state.instance,
                tasks=[snapshot.tasks[tid] for tid in sorted(state.task_ids)],
            )
            for state in snapshot.instances
        ]
        # Right-size: release tasks stranded on instances whose value no
        # longer covers their price (same adaptation as Synergy — see
        # repro.baselines.synergy module docstring).
        released: list[Task] = []
        for oi in list(open_instances):
            if oi.tasks and self._instance_value(oi.tasks) < oi.hourly_cost - 1e-9:
                released.extend(oi.tasks)
                open_instances.remove(oi)
        queued = sorted(
            snapshot.unassigned_tasks() + released,
            key=lambda t: (-self.rp_calculator.rp(t), t.task_id),
        )

        # Try to complete existing singleton instances into pairs first —
        # Owl prefers filling profiled-compatible slots over opening new
        # instances.
        placed: set[str] = set()
        for oi in open_instances:
            if len(oi.tasks) != 1:
                continue
            resident = oi.tasks[0]
            best_task = None
            best_ratio = 0.0
            for task in queued:
                if task.task_id in placed or not oi.fits(task):
                    continue
                tput_r = self.profile.pairwise(resident.workload, task.workload)
                tput_t = self.profile.pairwise(task.workload, resident.workload)
                if min(tput_r, tput_t) < self.interference_floor:
                    continue
                tnrp = tput_r * self.rp_calculator.rp(resident) + (
                    tput_t * self.rp_calculator.rp(task)
                )
                if tnrp < oi.hourly_cost - 1e-9:
                    continue
                ratio = tnrp / oi.hourly_cost
                if ratio > best_ratio:
                    best_ratio, best_task = ratio, task
            if best_task is not None:
                oi.add(best_task)
                placed.add(best_task.task_id)

        remaining = [t for t in queued if t.task_id not in placed]

        # Rank all remaining pairs by TNRP / pair-instance cost.
        scored: list[tuple[float, Task, Task, InstanceType]] = []
        for i, a in enumerate(remaining):
            for b in remaining[i + 1 :]:
                metrics = self._pair_metrics(a, b)
                if metrics is not None:
                    scored.append((metrics[0], a, b, metrics[1]))
        scored.sort(key=lambda s: (-s[0], s[1].task_id, s[2].task_id))

        for ratio, a, b, itype in scored:
            if a.task_id in placed or b.task_id in placed:
                continue
            open_instances.append(
                OpenInstance(instance=fresh_instance(itype), tasks=[a, b])
            )
            placed.update((a.task_id, b.task_id))

        for task in remaining:
            if task.task_id in placed:
                continue
            itype = self.rp_calculator.rp_type(task)
            open_instances.append(
                OpenInstance(instance=fresh_instance(itype), tasks=[task])
            )
            placed.add(task.task_id)

        return TargetConfiguration.from_pairs(
            (oi.instance, (t.task_id for t in oi.tasks)) for oi in open_instances
        )
