"""Stratus baseline (Chung et al., SoCC '18), adapted per §6.1.

Stratus minimizes migration overhead by co-locating tasks with *similar
finish times*, relying on job runtime estimates (the paper gives Stratus
exact durations — its best case).  Remaining runtimes are discretized into
exponentially growing bins, and Stratus packs within a bin:

* **packer** — a queued task first tries existing instances whose dominant
  remaining runtime falls in the same bin (best fit);
* **scale-out** — tasks that do not fit are grouped per bin, and Stratus
  launches the instance type with the best dollar-efficiency for the
  *group* (highest summed reservation price per dollar among greedy
  fills), so co-scheduled tasks retire together and instances drain
  cleanly.

Stratus never migrates: duration-aligned packing is its substitute for
reconfiguration, which is exactly the trade-off the paper probes in
Figure 5.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.cluster.instance import InstanceType, fresh_instance
from repro.cluster.state import ClusterSnapshot, TargetConfiguration
from repro.cluster.task import Task
from repro.core.interfaces import Scheduler
from repro.core.protocol import AssignTask, LaunchInstance
from repro.core.reservation_price import ReservationPriceCalculator
from repro.baselines.base import OpenInstance

#: Smallest runtime bin edge, hours.  Bins are [base·2^k, base·2^{k+1}).
_BIN_BASE_HOURS = 0.25


def runtime_bin(remaining_hours: float) -> int:
    """Exponential runtime-bin index of a remaining runtime."""
    if remaining_hours <= _BIN_BASE_HOURS:
        return 0
    return int(math.floor(math.log2(remaining_hours / _BIN_BASE_HOURS))) + 1


class StratusScheduler(Scheduler):
    """Runtime-binned packing with group-aware scale-out, no migrations."""

    name = "Stratus"

    #: "Stratus never migrates" as a machine-checked contract: its
    #: decisions may only launch instances and place queued tasks.
    action_types = frozenset({LaunchInstance, AssignTask})

    def __init__(self, catalog: Sequence[InstanceType]):
        self.catalog = [it for it in catalog if not it.is_ghost]
        self.rp_calculator = ReservationPriceCalculator(self.catalog)

    # ------------------------------------------------------------------
    # Runtime estimation
    # ------------------------------------------------------------------
    def _remaining_hours(self, task: Task, snapshot: ClusterSnapshot) -> float:
        """Estimated remaining runtime from the (exact) duration estimate.

        The scheduler knows arrival time and total duration; elapsed time
        bounds progress from above, so this is a lower-bound estimate of
        the remaining runtime — matching how Stratus consumes runtime
        estimates in practice.
        """
        job = snapshot.jobs[task.job_id]
        elapsed_h = max(0.0, (snapshot.time_s - job.arrival_time_s) / 3600.0)
        return max(1e-3, job.duration_hours - elapsed_h)

    def _instance_bin(
        self, open_instance: OpenInstance, snapshot: ClusterSnapshot
    ) -> int | None:
        if not open_instance.tasks:
            return None
        return max(
            runtime_bin(self._remaining_hours(t, snapshot))
            for t in open_instance.tasks
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, snapshot: ClusterSnapshot) -> TargetConfiguration:
        open_instances = [
            OpenInstance(
                instance=state.instance,
                tasks=[snapshot.tasks[tid] for tid in sorted(state.task_ids)],
            )
            for state in snapshot.instances
        ]
        queued = sorted(
            snapshot.unassigned_tasks(),
            key=lambda t: (-self.rp_calculator.rp(t), t.task_id),
        )

        # Bucket queued tasks by runtime bin.
        bins: dict[int, list[Task]] = {}
        for task in queued:
            bins.setdefault(
                runtime_bin(self._remaining_hours(task, snapshot)), []
            ).append(task)

        for bin_idx in sorted(bins, reverse=True):
            pending = bins[bin_idx]
            pending = self._pack_into_existing(
                pending, bin_idx, open_instances, snapshot
            )
            self._scale_out(pending, open_instances)

        return TargetConfiguration.from_pairs(
            (oi.instance, (t.task_id for t in oi.tasks)) for oi in open_instances
        )

    def _pack_into_existing(
        self,
        pending: list[Task],
        bin_idx: int,
        open_instances: list[OpenInstance],
        snapshot: ClusterSnapshot,
    ) -> list[Task]:
        """The Stratus packer: best-fit into same-bin instances."""
        leftover = []
        for task in pending:
            candidates = [
                oi
                for oi in open_instances
                if oi.fits(task) and self._instance_bin(oi, snapshot) == bin_idx
            ]
            if not candidates:
                leftover.append(task)
                continue

            def leftover_key(oi: OpenInstance) -> tuple:
                rem = oi.remaining() - task.demand_for(oi.instance_type.family)
                return (rem.gpus, rem.cpus, rem.ram_gb, oi.instance.instance_id)

            min(candidates, key=leftover_key).add(task)
        return leftover

    def _scale_out(
        self, pending: list[Task], open_instances: list[OpenInstance]
    ) -> None:
        """Launch group-efficient instances for same-bin leftover tasks.

        For each candidate type, greedily fill it with pending tasks (RP
        descending) and score the fill by summed RP per dollar; launch the
        best-scoring type, assign its fill, and repeat until the bin
        drains.
        """
        pending = list(pending)
        while pending:
            best: tuple[float, InstanceType, list[Task]] | None = None
            for itype in self.catalog:
                fill: list[Task] = []
                remaining = itype.capacity
                for task in pending:
                    demand = task.demand_for(itype.family)
                    if demand.fits_within(remaining):
                        fill.append(task)
                        remaining = remaining - demand
                if not fill:
                    continue
                score = self.rp_calculator.rp_of_set(fill) / itype.hourly_cost
                if best is None or score > best[0] + 1e-12:
                    best = (score, itype, fill)
            if best is None:
                raise ValueError(
                    f"Stratus: no instance type fits task(s) "
                    f"{[t.task_id for t in pending[:3]]}"
                )
            _, itype, fill = best
            open_instances.append(
                OpenInstance(instance=fresh_instance(itype), tasks=list(fill))
            )
            chosen = {t.task_id for t in fill}
            pending = [t for t in pending if t.task_id not in chosen]
