"""Baseline schedulers from the paper's evaluation (§6.1)."""

from repro.baselines.base import OpenInstance, ReactiveScheduler
from repro.baselines.no_packing import NoPackingScheduler
from repro.baselines.owl import OwlScheduler
from repro.baselines.stratus import StratusScheduler, runtime_bin
from repro.baselines.synergy import SynergyScheduler

__all__ = [
    "OpenInstance",
    "ReactiveScheduler",
    "NoPackingScheduler",
    "OwlScheduler",
    "StratusScheduler",
    "runtime_bin",
    "SynergyScheduler",
]
