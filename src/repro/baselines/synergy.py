"""Synergy baseline (Mohan et al., OSDI '22), adapted per §6.1.

Synergy packs with a best-fit heuristic to minimize resource fragmentation
in a fixed-size cluster.  The paper adapts it to cloud-based clusters by
(a) launching the lowest-cost instance type that fits a task when no
existing instance has capacity, and (b) making the packing
interference-aware: a task joins an existing instance only if the
instance's throughput-normalized reservation price stays at or above its
hourly cost, using the same online-learned throughput table as Eva.

One more adaptation is required for a variable-size cluster: when job
completions leave an instance hosting tasks whose value no longer covers
its price (e.g. a small long-running task stranded on a large GPU
instance), Synergy *right-sizes* — it re-places those tasks (a migration)
rather than paying the oversized instance indefinitely.  Without this,
best-fit packing costs **more** than No-Packing on heavy-tailed traces,
which contradicts the paper's measurements (DESIGN.md §4).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.instance import InstanceType
from repro.cluster.state import ClusterSnapshot
from repro.cluster.task import Task
from repro.core.evaluation import TNRPEvaluator
from repro.core.interfaces import JobThroughputReport
from repro.core.monitor import ThroughputMonitor
from repro.core.protocol import (
    AssignTask,
    LaunchInstance,
    MigrateTask,
    TerminateInstance,
)
from repro.baselines.base import OpenInstance, ReactiveScheduler


class SynergyScheduler(ReactiveScheduler):
    """Best-fit packing with a TNRP admission check and right-sizing."""

    name = "Synergy"

    #: Reactive placement plus the right-sizing adaptation, which
    #: re-places stranded tasks (migrations) and drops their instances.
    action_types = frozenset(
        {LaunchInstance, AssignTask, MigrateTask, TerminateInstance}
    )

    def __init__(self, catalog: Sequence[InstanceType], default_tput: float = 0.95):
        super().__init__(catalog)
        self.monitor = ThroughputMonitor()
        self.monitor.table.default_tput = default_tput

    def on_throughput_reports(self, reports: tuple[JobThroughputReport, ...]) -> None:
        self.monitor.ingest(reports)

    def release_inefficient(
        self, open_instances: list[OpenInstance], snapshot: ClusterSnapshot
    ) -> list[Task]:
        evaluator = self._evaluator(snapshot)
        released: list[Task] = []
        for oi in list(open_instances):
            if not oi.tasks:
                continue
            if evaluator.set_value(oi.tasks) < oi.hourly_cost - 1e-9:
                released.extend(oi.tasks)
                open_instances.remove(oi)
        return released

    def _evaluator(self, snapshot: ClusterSnapshot) -> TNRPEvaluator:
        return TNRPEvaluator(
            calculator=self.rp_calculator,
            table=self.monitor.table,
            jobs=snapshot.jobs,
            multi_task_aware=False,
        )

    def _fit_score(self, open_instance: OpenInstance, task: Task) -> float:
        """Normalized leftover after adding the task (lower = tighter fit)."""
        itype = open_instance.instance_type
        rem = open_instance.remaining() - task.demand_for(itype.family)
        cap = itype.capacity
        score = 0.0
        dims = 0
        for left, total in zip(rem.as_tuple(), cap.as_tuple()):
            if total > 0:
                score += left / total
                dims += 1
        return score / max(1, dims)

    def choose_placement(
        self,
        task: Task,
        open_instances: list[OpenInstance],
        snapshot: ClusterSnapshot,
    ) -> OpenInstance | InstanceType:
        evaluator = self._evaluator(snapshot)
        viable = []
        for oi in open_instances:
            if not oi.fits(task):
                continue
            value = evaluator.set_value(oi.tasks + [task])
            if value >= oi.hourly_cost - 1e-9:
                viable.append(oi)
        if viable:
            return min(
                viable,
                key=lambda oi: (self._fit_score(oi, task), oi.instance.instance_id),
            )
        return self.cheapest_type_for(task)
