"""Table 14 bench: Gavel-duration end-to-end simulation."""

from _util import run_once, save_and_print

from repro.experiments import table14_gavel


def bench_table14(benchmark):
    result = run_once(benchmark, table14_gavel.run)
    save_and_print("table14_gavel", result.table.render())
    norm = {
        name: result.comparison.normalized_cost(name)
        for name in result.comparison.results
    }
    assert norm["Eva"] == min(norm.values())
