"""Ablation: Algorithm 1 candidate grouping (DESIGN.md §4.2).

Verifies that the grouped argmax produces the same configuration cost as
the paper's faithful per-task scan, and times both.
"""

import time

from _util import run_once, save_and_print

from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.core.evaluation import RPEvaluator
from repro.core.full_reconfig import configuration_cost, full_reconfiguration
from repro.core.reservation_price import ReservationPriceCalculator
from repro.experiments.common import scaled
from repro.workloads.synthetic import microbench_task_pool

SIZES = (100, 200, 400)


def _run():
    catalog = ec2_catalog()
    evaluator = RPEvaluator(ReservationPriceCalculator(catalog))
    rows = []
    for n in SIZES:
        tasks = microbench_task_pool(scaled(n, maximum=2000), seed=11)
        t0 = time.perf_counter()
        grouped = full_reconfiguration(tasks, catalog, evaluator, group_identical=True)
        t_grouped = time.perf_counter() - t0
        t0 = time.perf_counter()
        faithful = full_reconfiguration(tasks, catalog, evaluator, group_identical=False)
        t_faithful = time.perf_counter() - t0
        rows.append(
            (
                len(tasks),
                round(configuration_cost(grouped), 2),
                round(configuration_cost(faithful), 2),
                round(t_grouped * 1000, 1),
                round(t_faithful * 1000, 1),
            )
        )
    return ExperimentTable(
        title="Ablation: grouped vs faithful Algorithm 1 candidate scan",
        headers=(
            "Tasks",
            "Grouped Cost ($/hr)",
            "Faithful Cost ($/hr)",
            "Grouped (ms)",
            "Faithful (ms)",
        ),
        rows=tuple(rows),
    )


def bench_grouping(benchmark):
    table = run_once(benchmark, _run)
    save_and_print("ablation_grouping", table.render())
    # Both modes are valid greedy executions of Algorithm 1; they may
    # tie-break differently among equal-RP tasks with different demand
    # shapes, so costs agree only to a small tolerance.
    for row in table.rows:
        assert abs(row[1] - row[2]) / row[2] < 0.01, (
            "grouped and faithful scans diverged by more than 1%"
        )
