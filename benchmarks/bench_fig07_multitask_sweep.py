"""Figure 7 bench: multi-task job proportion sweep."""

from _util import run_once, save_and_print

from repro.experiments import fig07_multitask_sweep


def bench_fig07(benchmark):
    result = run_once(benchmark, fig07_multitask_sweep.run)
    save_and_print("fig07_multitask_sweep", result.table.render())
    for fraction in (0.0, 0.2, 0.4, 0.6):
        assert result.norm_cost[("Eva", fraction)] < 1.0
