"""Extension bench: JCT-aware efficiency margin (§6.3 future work).

Sweeps the packing margin and reports the cost/JCT frontier: margin 0 is
the paper's Eva; larger margins refuse thin co-locations, recovering
throughput at higher cost, converging toward No-Packing.
"""

from _util import run_once, save_and_print

from repro.analysis.reporting import ExperimentTable
from repro.baselines import NoPackingScheduler
from repro.cloud.catalog import ec2_catalog
from repro.core.scheduler import EvaConfig, EvaScheduler
from repro.experiments.common import scaled
from repro.sim.simulator import run_simulation
from repro.workloads.alibaba import synthesize_alibaba_trace

MARGINS = (0.0, 0.1, 0.3, 1.0)


def _run():
    num_jobs = scaled(100, minimum=40, maximum=1500)
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(num_jobs, seed=13)
    baseline = run_simulation(trace, NoPackingScheduler(catalog))
    rows = []
    for margin in MARGINS:
        result = run_simulation(
            trace,
            EvaScheduler(catalog, config=EvaConfig(efficiency_margin=margin)),
        )
        rows.append(
            (
                margin,
                f"{result.total_cost / baseline.total_cost * 100:.1f}%",
                round(result.mean_normalized_tput(), 3),
                round(result.mean_jct_hours(), 2),
            )
        )
    rows.append(
        (
            "No-Packing",
            "100.0%",
            round(baseline.mean_normalized_tput(), 3),
            round(baseline.mean_jct_hours(), 2),
        )
    )
    return ExperimentTable(
        title=f"Extension: JCT-aware efficiency margin ({num_jobs} jobs)",
        headers=("Margin", "Norm. Total Cost", "Norm. Throughput", "JCT (hours)"),
        rows=tuple(rows),
    )


def bench_margin(benchmark):
    table = run_once(benchmark, _run)
    save_and_print("extension_margin", table.render())
    assert float(table.rows[0][1].rstrip("%")) <= float(
        table.rows[-2][1].rstrip("%")
    ) + 2.0
