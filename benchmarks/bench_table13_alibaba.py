"""Table 13 bench: Alibaba-duration end-to-end simulation."""

from _util import run_once, save_and_print

from repro.experiments import table13_alibaba


def bench_table13(benchmark):
    result = run_once(benchmark, table13_alibaba.run)
    save_and_print("table13_alibaba", result.table.render())
    norm = {
        name: result.comparison.normalized_cost(name)
        for name in result.comparison.results
    }
    # Paper shape: every packing scheduler beats No-Packing; Eva wins.
    assert norm["Eva"] == min(norm.values())
    assert norm["Eva"] < 0.9
