"""Table 10 + Figure 3 bench: 120-job end-to-end experiment."""

from _util import run_once, save_and_print

from repro.experiments import table10_e2e_large


def bench_table10(benchmark):
    result = run_once(benchmark, table10_e2e_large.run)
    save_and_print(
        "table10_e2e_large",
        result.table.render() + "\n\n" + result.uptime_cdf_text,
    )
    assert result.comparison.normalized_cost("Eva") < 1.0
