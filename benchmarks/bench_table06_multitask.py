"""Table 6 bench: Eva-Single vs Eva-Multi on multi-task jobs."""

from _util import run_once, save_and_print

from repro.experiments import table06_multitask


def bench_table06(benchmark):
    result = run_once(benchmark, table06_multitask.run)
    save_and_print("table06_multitask", result.table.render())
    # Paper shape: both Eva variants beat No-Packing; Eva-Multi has JCT
    # no worse than Eva-Single.
    assert result.norm_costs["Eva-Multi"][0] < 1.0
    assert result.norm_costs["Eva-Single"][0] < 1.0
