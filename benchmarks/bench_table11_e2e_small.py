"""Table 11 bench: 32-job end-to-end experiment, all five schedulers."""

from _util import run_once, save_and_print

from repro.experiments import table11_e2e_small


def bench_table11(benchmark):
    result = run_once(benchmark, table11_e2e_small.run)
    save_and_print("table11_e2e_small", result.table.render())
    norm = {
        name: result.comparison.normalized_cost(name)
        for name in result.comparison.results
    }
    assert norm["Eva"] == min(norm.values())
