"""Extension bench: spot instances (§7 names preemptible spot markets as
an orthogonal extension direction).

Sweeps the spot preemption rate and reports cost and JCT for Eva on spot
vs on-demand capacity.  Expected shape: spot cuts cost roughly by the
discount factor; higher preemption rates claw some of it back through
re-placement delays and longer JCTs.
"""

from _util import run_once, save_and_print

from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.core.scheduler import EvaScheduler
from repro.experiments.common import scaled
from repro.sim.simulator import SpotConfig, run_simulation
from repro.workloads.alibaba import synthesize_alibaba_trace

PREEMPTION_RATES = (0.02, 0.1, 0.3)


def _run():
    num_jobs = scaled(100, minimum=40, maximum=1500)
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(num_jobs, seed=9)
    on_demand = run_simulation(trace, EvaScheduler(catalog))
    rows = [
        (
            "on-demand",
            round(on_demand.total_cost, 2),
            "100.0%",
            round(on_demand.mean_jct_hours(), 2),
            0,
        )
    ]
    for rate in PREEMPTION_RATES:
        result = run_simulation(
            trace,
            EvaScheduler(catalog),
            spot=SpotConfig(enabled=True, preemption_rate_per_hour=rate, seed=9),
        )
        rows.append(
            (
                f"spot ({rate:.2f}/hr preemption)",
                round(result.total_cost, 2),
                f"{result.total_cost / on_demand.total_cost * 100:.1f}%",
                round(result.mean_jct_hours(), 2),
                result.preemptions,
            )
        )
    return ExperimentTable(
        title=f"Extension: spot instances under Eva ({num_jobs} jobs, 30% of "
        "on-demand price)",
        headers=("Capacity", "Total Cost ($)", "Norm. Cost", "JCT (hours)", "Preemptions"),
        rows=tuple(rows),
    )


def bench_spot(benchmark):
    table = run_once(benchmark, _run)
    save_and_print("extension_spot", table.render())
    # Spot must be cheaper than on-demand at every swept rate.
    for row in table.rows[1:]:
        assert float(row[2].rstrip("%")) < 100.0
