"""Shared helpers for the benchmark harness.

Each bench regenerates one paper table/figure, prints the rendered rows
(visible with ``pytest -s``) and persists them under
``benchmarks/results/`` so a full run leaves an inspectable record: the
human-readable table as ``<name>.txt`` plus a machine-readable
``<name>.json`` sidecar carrying the wall-clock time, the scale/worker
configuration, and the git SHA the numbers were produced at — so perf
records stay comparable across runs and commits.

The experiments route their trial grids through
:mod:`repro.sim.batch`, so ``EVA_BENCH_WORKERS=N`` fans each bench's
simulations out over N processes.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

from repro.experiments.common import bench_scale, bench_workers

RESULTS_DIR = Path(__file__).parent / "results"

#: Wall-clock seconds of the most recent :func:`run_once` call, consumed
#: by the next :func:`save_and_print` (benches time-then-save in pairs).
_last_elapsed_s: float | None = None


def git_sha() -> str:
    """The current commit's short SHA, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def config_note() -> str:
    """The scale/parallelism stamp appended to every saved result."""
    workers = bench_workers()
    mode = "parallel" if workers > 1 else "serial"
    return (
        f"[EVA_BENCH_SCALE={bench_scale():g}, "
        f"EVA_BENCH_WORKERS={workers} ({mode})]"
    )


def save_and_print(
    name: str, text: str, elapsed_s: float | None = None
) -> None:
    """Print a rendered experiment table and save it to the results dir.

    Writes ``<name>.txt`` (rendered table + config stamp) and a
    ``<name>.json`` sidecar with the timing and configuration.  When
    ``elapsed_s`` is omitted, the duration of the most recent
    :func:`run_once` call (if any) is recorded.
    """
    global _last_elapsed_s
    if elapsed_s is None:
        elapsed_s = _last_elapsed_s
    _last_elapsed_s = None
    RESULTS_DIR.mkdir(exist_ok=True)
    stamped = f"{text}\n{config_note()}"
    (RESULTS_DIR / f"{name}.txt").write_text(stamped + "\n")
    sidecar = {
        "name": name,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(),
        "eva_bench_scale": bench_scale(),
        "eva_bench_workers": bench_workers(),
        "elapsed_s": round(elapsed_s, 4) if elapsed_s is not None else None,
    }
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(sidecar, indent=1, sort_keys=True) + "\n"
    )
    print()
    print(stamped)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    global _last_elapsed_s
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    _last_elapsed_s = time.perf_counter() - start
    return result
