"""Shared helpers for the benchmark harness.

Each bench regenerates one paper table/figure, prints the rendered rows
(visible with ``pytest -s``) and persists them under
``benchmarks/results/`` so a full run leaves an inspectable record.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_and_print(name: str, text: str) -> None:
    """Print a rendered experiment table and save it to the results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
