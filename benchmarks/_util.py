"""Shared helpers for the benchmark harness.

Each bench regenerates one paper table/figure, prints the rendered rows
(visible with ``pytest -s``) and persists them under
``benchmarks/results/`` so a full run leaves an inspectable record.

The experiments route their trial grids through
:mod:`repro.sim.batch`, so ``EVA_BENCH_WORKERS=N`` fans each bench's
simulations out over N processes; saved results are stamped with the
scale/worker configuration so records stay comparable across runs.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.common import bench_scale, bench_workers

RESULTS_DIR = Path(__file__).parent / "results"


def config_note() -> str:
    """The scale/parallelism stamp appended to every saved result."""
    workers = bench_workers()
    mode = "parallel" if workers > 1 else "serial"
    return (
        f"[EVA_BENCH_SCALE={bench_scale():g}, "
        f"EVA_BENCH_WORKERS={workers} ({mode})]"
    )


def save_and_print(name: str, text: str) -> None:
    """Print a rendered experiment table and save it to the results dir."""
    RESULTS_DIR.mkdir(exist_ok=True)
    stamped = f"{text}\n{config_note()}"
    (RESULTS_DIR / f"{name}.txt").write_text(stamped + "\n")
    print()
    print(stamped)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
