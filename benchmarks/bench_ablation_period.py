"""Ablation: scheduling period sensitivity (§3 uses 5 minutes).

Longer periods delay placements (jobs idle until the next round); very
short periods react faster at the price of more reconfiguration churn.
"""

from _util import run_once, save_and_print

from repro.analysis.reporting import ExperimentTable
from repro.baselines import NoPackingScheduler
from repro.cloud.catalog import ec2_catalog
from repro.core.scheduler import EvaScheduler
from repro.experiments.common import scaled
from repro.sim.simulator import run_simulation
from repro.workloads.alibaba import synthesize_alibaba_trace

PERIODS_S = (60.0, 300.0, 900.0, 1800.0)


def _run():
    num_jobs = scaled(120, minimum=50, maximum=2000)
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(num_jobs, seed=4)
    rows = []
    for period in PERIODS_S:
        baseline = run_simulation(
            trace, NoPackingScheduler(catalog), period_s=period
        )
        result = run_simulation(trace, EvaScheduler(catalog), period_s=period)
        rows.append(
            (
                int(period),
                round(result.total_cost / baseline.total_cost, 3),
                round(result.mean_idle_hours(), 3),
                round(result.mean_jct_hours(), 2),
            )
        )
    return ExperimentTable(
        title=f"Ablation: scheduling period ({num_jobs} jobs)",
        headers=("Period (s)", "Norm. Total Cost", "Job Idle (hours)", "JCT (hours)"),
        rows=tuple(rows),
        notes=("normalized to No-Packing at the same period",),
    )


def bench_period(benchmark):
    table = run_once(benchmark, _run)
    save_and_print("ablation_period", table.render())
    assert all(row[1] < 1.1 for row in table.rows)
