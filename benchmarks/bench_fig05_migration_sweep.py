"""Figure 5 bench: migration overhead sweep."""

from _util import run_once, save_and_print

from repro.experiments import fig05_migration_sweep


def bench_fig05(benchmark):
    result = run_once(benchmark, fig05_migration_sweep.run)
    save_and_print(
        "fig05_migration_sweep",
        result.adoption_table.render() + "\n\n" + result.cost_table.render(),
    )
    # Paper shape: Eva keeps winning as migration delays grow.
    assert result.norm_cost[("Eva", 8.0)] < 1.0
