"""Table 12 bench: deterministic simulation vs stochastic proxy."""

from _util import run_once, save_and_print

from repro.experiments import table12_fidelity


def bench_table12(benchmark):
    result = run_once(benchmark, table12_fidelity.run)
    save_and_print("table12_fidelity", result.table.render())
    # Paper reports <5% actual-vs-simulated gaps; allow modest slack for
    # the stochastic proxy.
    assert result.max_abs_difference < 0.10
