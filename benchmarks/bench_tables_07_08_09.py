"""Tables 7/8/9 bench: workload and trace-statistics renders."""

from _util import run_once, save_and_print

from repro.experiments import table07_workloads


def bench_table07(benchmark):
    table = run_once(benchmark, table07_workloads.run_table7)
    save_and_print("table07_workloads", table.render())
    assert len(table.rows) == 10


def bench_table08(benchmark):
    table = run_once(benchmark, table07_workloads.run_table8)
    save_and_print("table08_gpu_mix", table.render())


def bench_table09(benchmark):
    table = run_once(benchmark, table07_workloads.run_table9)
    save_and_print("table09_durations", table.render())
