"""Extension bench: heterogeneous resources (§4.2 generalization).

Gives the C7i/R7i families a CPU speed advantage for the CPU-bound
Table-7 workloads (the same effect the Table-7 footnote measures via
lower CPU demands) and compares packing costs under the homogeneous vs
heterogeneous reservation-price definitions.
"""

from _util import run_once, save_and_print

from repro.analysis.reporting import ExperimentTable
from repro.cloud.catalog import ec2_catalog
from repro.core.evaluation import TNRPEvaluator
from repro.core.full_reconfig import configuration_cost, full_reconfiguration
from repro.core.heterogeneous import (
    FamilySpeedProfile,
    HeterogeneousEvaluator,
    HeterogeneousRPCalculator,
    heterogeneous_full_reconfiguration,
)
from repro.core.reservation_price import ReservationPriceCalculator
from repro.core.throughput_table import CoLocationThroughputTable
from repro.experiments.common import scaled
from repro.workloads.synthetic import microbench_task_pool
from repro.workloads.workloads import CPU_WORKLOADS

#: CPU workloads iterate ~1.6x faster on the high-frequency families
#: (mirrors Table 7's 14-vs-8-CPU Diamond demand split).
SPEEDUPS = {name: {"c7i": 1.6, "r7i": 1.6} for name in CPU_WORKLOADS}


def _run():
    num_tasks = scaled(150, minimum=50, maximum=2000)
    catalog = ec2_catalog()
    tasks = microbench_task_pool(num_tasks, seed=12)

    hom_ev = TNRPEvaluator(
        ReservationPriceCalculator(catalog),
        CoLocationThroughputTable(default_tput=1.0),
        jobs={},
    )
    hom_cost = configuration_cost(full_reconfiguration(tasks, catalog, hom_ev))

    het_calc = HeterogeneousRPCalculator(
        catalog, FamilySpeedProfile(speeds=SPEEDUPS)
    )
    het_ev = HeterogeneousEvaluator(
        calculator=het_calc,
        table=CoLocationThroughputTable(default_tput=1.0),
        jobs={},
    )
    het_packed = heterogeneous_full_reconfiguration(tasks, catalog, het_ev)
    het_cost = configuration_cost(het_packed)
    # Dollars per unit of work: each task on family f delivers speed(f)
    # units per hour.
    work_rate = sum(
        het_calc.profile.speed(t.workload, p.instance_type.family)
        for p in het_packed
        for t in p.tasks
    )
    return ExperimentTable(
        title=f"Extension: heterogeneous RP ({num_tasks} tasks, CPU families "
        "1.6x faster for CPU workloads)",
        headers=("Variant", "Config Cost ($/hr)", "Work Rate (tasks-eq/hr)", "$ per work unit"),
        rows=(
            ("homogeneous RP", round(hom_cost, 2), float(num_tasks), round(hom_cost / num_tasks, 4)),
            ("heterogeneous RP", round(het_cost, 2), round(work_rate, 1), round(het_cost / work_rate, 4)),
        ),
        notes=("heterogeneous RP buys iterations, not instance-hours (§4.2)",),
    )


def bench_heterogeneous(benchmark):
    table = run_once(benchmark, _run)
    save_and_print("extension_heterogeneous", table.render())
    hom_dollars_per_work = table.rows[0][3]
    het_dollars_per_work = table.rows[1][3]
    assert het_dollars_per_work <= hom_dollars_per_work + 1e-9
