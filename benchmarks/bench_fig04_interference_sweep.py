"""Figure 4 bench: interference sweep (Eva-RP vs Eva-TNRP vs Owl)."""

from _util import run_once, save_and_print

from repro.experiments import fig04_interference_sweep


def bench_fig04(benchmark):
    result = run_once(benchmark, fig04_interference_sweep.run)
    save_and_print("fig04_interference_sweep", result.table.render())
    # Paper shape: Eva-RP degrades sharply with interference while
    # Eva-TNRP stays at or below No-Packing.
    assert result.norm_cost[("Eva-RP", 0.8)] > result.norm_cost[("Eva-RP", 1.0)]
    assert result.norm_cost[("Eva-TNRP", 0.8)] <= 1.05
