"""Hot-path microbenchmark: simulator event loop + Algorithm 1 packing.

Measures the engine's throughput on the two large-trace evaluation
scenarios (the Table 10 synthetic 120-job trace and a Table 13-style
Alibaba trace) and emits machine-readable records so future PRs have a
perf trajectory:

* appends a run record to ``BENCH_hotpath.json`` at the repo root (the
  committed before/after history), and
* writes the latest run to ``benchmarks/results/bench_hotpath.json``.

Reported rates: simulation events dispatched per second, scheduling
rounds per second, and Algorithm 1 ``_pack_one_instance`` calls per
second.  Event and pack-call counts are taken by wrapping the hot
functions, so the bench runs unmodified against older revisions of the
engine (useful for before/after comparisons from a worktree).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full size
    EVA_BENCH_SCALE=0.2 PYTHONPATH=src python benchmarks/bench_hotpath.py
    EVA_BENCH_LABEL=my-experiment PYTHONPATH=src python benchmarks/bench_hotpath.py

``EVA_BENCH_SCALE`` shrinks the traces for smoke runs (the CI job uses a
small scale); ``EVA_BENCH_LABEL`` tags the appended history record.
``EVA_BENCH_HOTPATH_OUT`` overrides the history file path.

The results fingerprint (per-scenario ``total_cost``) must not move
across engine optimizations — the determinism/equivalence suite guards
that, and this bench makes drift visible in the committed history.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_HISTORY = REPO_ROOT / "BENCH_hotpath.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cloud.catalog import ec2_catalog  # noqa: E402
from repro.core import make_scheduler  # noqa: E402
from repro.experiments.common import bench_scale, scaled  # noqa: E402
from repro.sim.simulator import ClusterSimulator  # noqa: E402
from repro.workloads.alibaba import (  # noqa: E402
    alibaba_replay_trace,
    synthesize_alibaba_trace,
)
from repro.workloads.synthetic import synthetic_trace  # noqa: E402


def _scenarios() -> list[tuple[str, object, str]]:
    """(name, trace, scheduler registry name) triples, scale-aware."""
    table10_jobs = scaled(120, minimum=24, maximum=120)
    table13_jobs = scaled(300, minimum=40, maximum=6274)
    return [
        (
            f"table10_synthetic{table10_jobs}_eva",
            synthetic_trace(table10_jobs, seed=0, name=f"physical-{table10_jobs}"),
            "eva",
        ),
        (
            f"table10_synthetic{table10_jobs}_stratus",
            synthetic_trace(table10_jobs, seed=0, name=f"physical-{table10_jobs}"),
            "stratus",
        ),
        (
            f"table13_alibaba{table13_jobs}_eva",
            synthesize_alibaba_trace(table13_jobs, seed=0),
            "eva",
        ),
        (
            # Replay-scale scenario: 10k jobs at full scale.  The name is
            # fixed (not job-count-derived) because drift comparisons are
            # scoped to runs with the same ``eva_bench_scale`` anyway, and
            # per-run ``num_jobs`` is recorded in the scenario stats.
            "table13_alibaba10k_eva",
            alibaba_replay_trace(scaled(10_000, minimum=500, maximum=10_000), seed=0),
            "eva",
        ),
    ]


def _run_one(name: str, trace, scheduler_name: str) -> dict:
    """Simulate one scenario with counting wrappers on the hot functions."""
    import repro.core.full_reconfig as full_reconfig

    counts = {"events": 0, "pack_calls": 0}

    real_pack = full_reconfig._pack_one_instance

    def counting_pack(*args, **kwargs):
        counts["pack_calls"] += 1
        return real_pack(*args, **kwargs)

    real_dispatch = ClusterSimulator._dispatch

    def counting_dispatch(self, event):
        counts["events"] += 1
        return real_dispatch(self, event)

    full_reconfig._pack_one_instance = counting_pack
    ClusterSimulator._dispatch = counting_dispatch
    try:
        sim = ClusterSimulator(
            trace=trace, scheduler=make_scheduler(scheduler_name, ec2_catalog())
        )
        start = time.perf_counter()
        result = sim.run()
        wall_s = time.perf_counter() - start
    finally:
        full_reconfig._pack_one_instance = real_pack
        ClusterSimulator._dispatch = real_dispatch

    return {
        "scheduler": result.scheduler_name,
        "num_jobs": result.num_jobs,
        "wall_s": round(wall_s, 4),
        "events": counts["events"],
        "events_per_s": round(counts["events"] / wall_s, 2),
        "rounds": result.scheduling_rounds,
        "rounds_per_s": round(result.scheduling_rounds / wall_s, 2),
        "pack_calls": counts["pack_calls"],
        "pack_calls_per_s": round(counts["pack_calls"] / wall_s, 2),
        # Fingerprint: must be identical across engine optimizations.
        "total_cost": round(result.total_cost, 6),
    }


def _load_history(path: Path) -> dict:
    if path.exists():
        try:
            history = json.loads(path.read_text())
            if isinstance(history, dict) and isinstance(history.get("runs"), list):
                return history
        except json.JSONDecodeError:
            pass
    return {
        "bench": "hotpath",
        "description": (
            "Simulator/packing hot-path throughput on the Table 10/13 "
            "large-trace scenarios; see docs/benchmarks.md"
        ),
        "runs": [],
    }


def _check_drift(history: dict, record: dict) -> None:
    """Compare each scenario's ``total_cost`` against the committed history.

    The fingerprint must be byte-stable across engine optimizations.  For
    every scenario in ``record``, the baseline is the most recent prior
    run at the *same* ``eva_bench_scale`` that recorded that scenario.  A
    mismatch prints both values and aborts (override with
    ``EVA_BENCH_ALLOW_DRIFT=1`` when the change is intentional, e.g. a
    deliberate trace/scenario edit).  A scenario with no prior record is
    announced explicitly — never silently passed over — so a renamed or
    missing scenario key cannot masquerade as "no drift".
    """
    allow = os.environ.get("EVA_BENCH_ALLOW_DRIFT") == "1"
    scale = record["eva_bench_scale"]
    drifted: list[str] = []
    for name, stats in record["scenarios"].items():
        baseline = None
        for run in reversed(history.get("runs", [])):
            if run.get("eva_bench_scale") != scale:
                continue
            prior = run.get("scenarios", {}).get(name)
            if prior is not None and "total_cost" in prior:
                baseline = (run.get("label", "?"), prior["total_cost"])
                break
        if baseline is None:
            print(
                f"[bench_hotpath] drift-check {name}: no prior record at "
                f"scale {scale} — recording first baseline "
                f"(total_cost={stats['total_cost']})",
                flush=True,
            )
            continue
        label, prior_cost = baseline
        if prior_cost != stats["total_cost"]:
            print(
                f"[bench_hotpath] DRIFT in {name}: total_cost "
                f"{stats['total_cost']} != baseline {prior_cost} "
                f"(run '{label}', scale {scale})",
                file=sys.stderr,
                flush=True,
            )
            drifted.append(name)
        else:
            print(
                f"[bench_hotpath] drift-check {name}: total_cost matches "
                f"baseline ({prior_cost})",
                flush=True,
            )
    if drifted and not allow:
        raise SystemExit(
            "[bench_hotpath] results fingerprint drifted for: "
            + ", ".join(drifted)
            + " — engine optimizations must not change simulation results. "
            "Set EVA_BENCH_ALLOW_DRIFT=1 only for intentional scenario changes."
        )


def main() -> dict:
    from _util import git_sha  # local import: benchmarks/ is not a package

    record = {
        "label": os.environ.get("EVA_BENCH_LABEL", "run"),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "eva_bench_scale": bench_scale(),
        "scenarios": {},
    }
    for name, trace, scheduler_name in _scenarios():
        print(f"[bench_hotpath] {name} ...", flush=True)
        record["scenarios"][name] = _run_one(name, trace, scheduler_name)
        stats = record["scenarios"][name]
        print(
            f"[bench_hotpath]   {stats['wall_s']:.2f}s  "
            f"{stats['events_per_s']:.0f} events/s  "
            f"{stats['rounds_per_s']:.1f} rounds/s  "
            f"{stats['pack_calls_per_s']:.0f} pack calls/s",
            flush=True,
        )

    out_path = Path(os.environ.get("EVA_BENCH_HOTPATH_OUT", DEFAULT_HISTORY))
    history = _load_history(out_path)
    _check_drift(history, record)
    history["runs"].append(record)
    out_path.write_text(json.dumps(history, indent=1, sort_keys=True) + "\n")

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_hotpath.json").write_text(
        json.dumps(record, indent=1, sort_keys=True) + "\n"
    )
    print(f"[bench_hotpath] appended record to {out_path}")
    return record


if __name__ == "__main__":
    main()
