"""Assemble EXPERIMENTS.md from benchmarks/results/*.txt.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/build_experiments_md.py

Each section pairs the paper's reported numbers with the measured table
from the latest harness run, plus a short comparison note on whether the
claimed *shape* reproduced.
"""

from __future__ import annotations

from pathlib import Path

RESULTS = Path(__file__).parent / "results"
TARGET = Path(__file__).parent.parent / "EXPERIMENTS.md"

#: (result file stem, section title, paper-reported summary, shape verdict)
SECTIONS: tuple[tuple[str, str, str, str], ...] = (
    (
        "fig01_interference",
        "Figure 1 — co-location interference heatmap",
        "Paper: measured pairwise normalized throughputs between 0.65 "
        "(GCN vs A3C) and 1.00, asymmetric (e.g. ResNet18|GPT2 = 0.92 vs "
        "GPT2|ResNet18 = 0.79).",
        "Reproduced exactly: the measurement harness replays the pair "
        "protocol against the transcribed matrix; max deviation 0.0000.",
    ),
    (
        "table01_delays",
        "Table 1 — reconfiguration delays",
        "Paper: acquisition 6-83s (avg 19), setup 140-251s (avg 190), "
        "checkpoint 2-30s (avg 8), launch 1-160s (avg 47).",
        "Sampled ranges/averages match the published statistics; the "
        "deterministic simulator uses the published means.",
    ),
    (
        "table04_microbench",
        "Table 4 — provisioning-cost micro-benchmark",
        "Paper (30 trials x 200 tasks, Gurobi 30-min limit): No-Packing "
        "1.56 ± 0.08x, Full Reconfig 1.01 ± 0.02x of ILP best-found; Full "
        "Reconfig runs in 378 ms vs ILP >30 min.",
        "Shape holds: Full Reconfiguration is within ~1% of the ILP "
        "incumbent in milliseconds, while HiGHS hits its time limit; "
        "No-Packing pays a large premium (magnitude depends on the "
        "workload mix sampled at this scale).",
    ),
    (
        "table05_runtime",
        "Table 5 — Full Reconfiguration runtime",
        "Paper: 0.40 / 1.50 / 5.53 / 22.06 s at 1k/2k/4k/8k tasks "
        "(quadratic growth, 8 cores).",
        "The faithful per-task scan shows the paper's superlinear growth; "
        "the grouped scan (DESIGN.md §4.2) flattens it to near-linear, "
        "packing 8k tasks well under the paper's 22 s.",
    ),
    (
        "table06_multitask",
        "Table 6 — multi-task job micro-benchmark",
        "Paper (10 trials x 100 four-task jobs): No-Packing 100%, "
        "Eva-Single 79.5% ± 3.8, Eva-Multi 74.2% ± 4.2; JCT 4.44 / 5.11 / "
        "4.55 h.",
        "Shape holds: both variants cut cost; Eva-Multi's JCT stays near "
        "No-Packing while Eva-Single pays a JCT penalty. Margins are "
        "smaller at the scaled trial count.",
    ),
    (
        "table10_e2e_large",
        "Table 10 + Figure 3 — 120-job end-to-end",
        "Paper (physical): No-Packing $536 (100%), Stratus 99.5%, Eva "
        "84.4%; Eva launches the most instances (154 vs 126), migrates "
        "1.23/task, and has the highest GPU/CPU/RAM allocation; Figure 3 "
        "shows Eva's shorter instance uptimes.",
        "Shape holds: Eva is cheapest with the highest allocations and "
        "the only non-zero migration rate; the uptime CDF shifts left "
        "for Eva.",
    ),
    (
        "table11_e2e_small",
        "Table 11 — 32-job end-to-end, five schedulers",
        "Paper (physical): No-Packing 100%, Stratus 88.9%, Synergy 89.0%, "
        "Owl 87.7%, Eva 75.1%.",
        "Shape holds: Eva is the cheapest of the five; packing baselines "
        "fall between Eva and No-Packing. The synthetic 32-job trace has "
        "high seed variance, so gaps are smaller than the paper's.",
    ),
    (
        "table12_fidelity",
        "Table 12 — simulator fidelity",
        "Paper: simulated vs physical cost differs by -3.2% to +4.9% "
        "across the five schedulers.",
        "Substitution (DESIGN.md §2): 'physical' = stochastic-delay proxy. "
        "Differences stay within a few percent, mirroring the paper's "
        "fidelity claim for the same code path.",
    ),
    (
        "table13_alibaba",
        "Table 13 — Alibaba-duration end-to-end",
        "Paper (6,274 jobs): No-Packing $480k (100%), Stratus 72%, "
        "Synergy 77%, Owl 78%, Eva 60%; tasks/instance 0.99-2.05 (Eva "
        "highest); JCT +5-16% for packers; norm tput 0.91-1.0.",
        "Shape holds at the scaled trace: Eva cheapest with the highest "
        "tasks/instance, all packers beat No-Packing, and Eva trades a "
        "~10% JCT increase for the savings.",
    ),
    (
        "table14_gavel",
        "Table 14 — Gavel-duration end-to-end",
        "Paper: No-Packing 100%, Stratus 67%, Synergy 67%, Owl 75%, Eva "
        "58%; longer jobs amplify packing benefits.",
        "Shape holds: savings grow relative to Table 13 for every packing "
        "scheduler, with Eva in front.",
    ),
    (
        "fig04_interference_sweep",
        "Figure 4 — impact of co-location interference",
        "Paper: as pairwise tput drops 1.0→0.8, Eva-RP's throughput "
        "collapses and its cost rises above No-Packing; Eva-TNRP keeps "
        "throughput near Owl's and the lowest cost, degrading to "
        "No-Packing in the extreme.",
        "Shape holds, including the Eva-RP cost crossover above 100% and "
        "Eva-TNRP's graceful degradation toward 1.0x.",
    ),
    (
        "fig05_migration_sweep",
        "Figure 5 — impact of migration overhead",
        "Paper: Full Reconfiguration adoption (<12%) and migrations/job "
        "fall as delays scale 1-10x; Eva's cost stays flat while "
        "Full-only degrades; Stratus is insensitive.",
        "Shape holds: adoption and migrations/job decrease monotonically "
        "with the multiplier; Eva keeps its savings at 8x delays while "
        "Full-only pays a premium. Deviation: our ensemble adopts Full "
        "in <1% of rounds (paper: up to 12%) because survivor-filling "
        "Partial Reconfiguration already captures most consolidations "
        "at this trace scale, leaving Full little marginal saving.",
    ),
    (
        "fig06_workload_mix",
        "Figure 6 — impact of multi-GPU job proportion",
        "Paper: packing benefits shrink as multi-GPU jobs grow 0→60%; "
        "Eva stays 10-15% below Stratus/Synergy; dropping Full Reconfig "
        "costs up to 8% extra.",
        "Shape holds: all packers converge toward No-Packing as the "
        "multi-GPU fraction grows, with Eva in front throughout.",
    ),
    (
        "fig07_multitask_sweep",
        "Figure 7 — impact of multi-task jobs",
        "Paper: Eva saves 10-37% vs baselines across multi-task "
        "proportions; Eva-Single costs up to 13% more than Eva.",
        "Shape holds: Eva remains cheapest at every proportion and "
        "Eva-Single trails it.",
    ),
    (
        "fig08_arrival_rate",
        "Figure 8 — impact of job arrival rate",
        "Paper: packing benefits shrink at low rates (fewer co-resident "
        "jobs); Eva stays 10-16% below other packers at every rate.",
        "Partially holds: Eva is the cheapest at every rate, but at this "
        "scaled trace (150 jobs) the rate effect is muted — the duration "
        "distribution's heavy tail dominates cost, so per-rate samples "
        "are noisy. Larger EVA_BENCH_SCALE values recover the paper's "
        "rate trend.",
    ),
    (
        "table07_workloads",
        "Table 7 — workload suite",
        "Paper: 10 workloads with per-task GPU/CPU/RAM demands and "
        "checkpoint/launch delays; CPU demands differ on C7i/R7i.",
        "Transcribed verbatim; demands drive every experiment.",
    ),
    (
        "table08_gpu_mix",
        "Table 8 — Alibaba GPU-demand mix",
        "Paper: 0 GPU 13.41%, 1 GPU 86.17%, 2 GPU 0.20%, 4 GPU 0.18%, "
        "8 GPU 0.04%.",
        "Generator matches within sampling error (substitution, "
        "DESIGN.md §2).",
    ),
    (
        "table09_durations",
        "Table 9 — job duration statistics",
        "Paper: Alibaba mean 9.1 h / median 0.2 / P80 1.0 / P95 5.2; "
        "Gavel 16.7 / 4.5 / 16.4 / 96.6.",
        "Quantile anchors are hit exactly by construction; means match "
        "within heavy-tail sampling error.",
    ),
    (
        "ablation_default_tput",
        "Ablation — default throughput prior t (§4.3)",
        "Paper fixes t = 0.95 without a sweep.",
        "Lower t packs more conservatively; costs stay at or below "
        "No-Packing across the sweep, flattest around the paper's 0.95.",
    ),
    (
        "ablation_period",
        "Ablation — scheduling period",
        "Paper uses 5-minute rounds.",
        "Longer periods add queueing idle; shorter periods buy little. "
        "5 minutes sits on the flat part of the curve.",
    ),
    (
        "ablation_grouping",
        "Ablation — Algorithm 1 candidate grouping (DESIGN.md §4.2)",
        "Paper scans every task per argmax (quadratic).",
        "Grouped and faithful scans agree on cost to <1% (tie-breaking "
        "among equal-RP demand shapes) while grouping is ~20x faster.",
    ),
    (
        "extension_spot",
        "Extension — spot instances (§7 direction)",
        "Not evaluated in the paper.",
        "Spot capacity at 30% of on-demand cuts Eva's bill to ~30%, with "
        "JCT growing in the preemption rate (checkpoint + re-queue + "
        "re-placement delays).",
    ),
    (
        "extension_heterogeneous",
        "Extension — heterogeneous resources (§4.2 sketch)",
        "Sketched: redefine RP as minimum cost per iteration.",
        "With faster CPU families, the heterogeneous RP lowers dollars "
        "per unit of work versus the homogeneous definition; at unit "
        "speeds the two coincide (property-tested).",
    ),
    (
        "extension_margin",
        "Extension — JCT-aware packing margin (§6.3 future work)",
        "Named as future work: add JCT to the objective.",
        "The margin exposes the cost-throughput frontier between the "
        "paper's Eva (margin 0) and No-Packing.",
    ),
)

HEADER = """\
# EXPERIMENTS — paper vs measured

This file records, for every table and figure in the paper's evaluation,
what the paper reports and what this reproduction measures.  All measured
tables below were written by the benchmark harness
(``pytest benchmarks/ --benchmark-only``; raw copies live in
``benchmarks/results/``) at the default ``EVA_BENCH_SCALE=1``.
``EVA_BENCH_SCALE=8`` approaches the paper's full scale.

Absolute dollar values are not expected to match — the paper ran on AWS
with the authors' trace; we run a simulator over synthesized traces with
the same published marginals (DESIGN.md §2 lists every substitution).
The claims under reproduction are the *shapes*: who wins, by roughly what
factor, and where crossovers fall.
"""


def main() -> None:
    parts = [HEADER]
    missing = []
    for stem, title, paper, verdict in SECTIONS:
        parts.append(f"\n## {title}\n")
        paper_text = paper[len("Paper: "):] if paper.startswith("Paper: ") else paper
        parts.append(f"**Paper.** {paper_text}\n")
        path = RESULTS / f"{stem}.txt"
        if path.exists():
            parts.append("**Measured.**\n")
            parts.append("```")
            parts.append(path.read_text().rstrip())
            parts.append("```\n")
        else:
            missing.append(stem)
            parts.append(
                "**Measured.** (run `pytest benchmarks/ --benchmark-only` "
                "to regenerate)\n"
            )
        parts.append(f"**Verdict.** {verdict}\n")
    TARGET.write_text("\n".join(parts))
    print(f"wrote {TARGET} ({len(SECTIONS) - len(missing)}/{len(SECTIONS)} sections measured)")
    if missing:
        print(f"missing results: {missing}")


if __name__ == "__main__":
    main()
