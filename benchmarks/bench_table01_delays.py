"""Table 1 bench: reconfiguration delay model statistics."""

from _util import run_once, save_and_print

from repro.experiments import table01_delays


def bench_table01(benchmark):
    table = run_once(benchmark, table01_delays.run)
    save_and_print("table01_delays", table.render())
    assert len(table.rows) == 4
