"""Figure 8 bench: job arrival rate sweep."""

from _util import run_once, save_and_print

from repro.experiments import fig08_arrival_rate


def bench_fig08(benchmark):
    result = run_once(benchmark, fig08_arrival_rate.run)
    save_and_print("fig08_arrival_rate", result.table.render())
    for rate in (0.5, 3.0):
        assert result.norm_cost[("Eva", rate)] < 1.0
