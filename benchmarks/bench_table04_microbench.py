"""Table 4 bench: No-Packing vs Full Reconfiguration vs ILP."""

from _util import run_once, save_and_print

from repro.experiments import table04_microbench


def bench_table04(benchmark):
    result = run_once(benchmark, table04_microbench.run)
    save_and_print("table04_microbench", result.table.render())
    # Paper shape: No-Packing ~1.56x, Full Reconfig ~1.01x of best-found.
    assert result.no_packing_norm[0] > result.full_reconfig_norm[0]
    assert result.full_reconfig_norm[0] < 1.1
