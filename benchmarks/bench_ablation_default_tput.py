"""Ablation: sensitivity to the default pairwise throughput ``t`` (§4.3).

The paper fixes t = 0.95; smaller values make packing more conservative
(co-location discouraged before any observation exists).  This ablation
sweeps t and reports Eva's normalized cost and throughput on the
Alibaba-like trace.
"""

from _util import run_once, save_and_print

from repro.analysis.reporting import ExperimentTable
from repro.baselines import NoPackingScheduler
from repro.cloud.catalog import ec2_catalog
from repro.core.scheduler import EvaConfig, EvaScheduler
from repro.experiments.common import scaled
from repro.sim.simulator import run_simulation
from repro.workloads.alibaba import synthesize_alibaba_trace

T_VALUES = (0.99, 0.95, 0.9, 0.8, 0.6)


def _run():
    num_jobs = scaled(120, minimum=50, maximum=2000)
    catalog = ec2_catalog()
    trace = synthesize_alibaba_trace(num_jobs, seed=3)
    baseline = run_simulation(trace, NoPackingScheduler(catalog))
    rows = []
    for t in T_VALUES:
        scheduler = EvaScheduler(catalog, config=EvaConfig(default_tput=t))
        result = run_simulation(trace, scheduler)
        rows.append(
            (
                t,
                round(result.total_cost / baseline.total_cost, 3),
                round(result.mean_normalized_tput(), 3),
                round(result.tasks_per_instance, 2),
            )
        )
    return ExperimentTable(
        title=f"Ablation: default throughput prior t ({num_jobs} jobs)",
        headers=("t", "Norm. Total Cost", "Norm. Throughput", "Tasks/Instance"),
        rows=tuple(rows),
        notes=("paper uses t = 0.95 in all experiments",),
    )


def bench_default_tput(benchmark):
    table = run_once(benchmark, _run)
    save_and_print("ablation_default_tput", table.render())
    assert all(row[1] <= 1.05 for row in table.rows)
