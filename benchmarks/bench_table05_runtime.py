"""Table 5 bench: Full Reconfiguration runtime scaling."""

from _util import run_once, save_and_print

from repro.experiments import table05_runtime


def bench_table05(benchmark):
    table = run_once(benchmark, table05_runtime.run)
    save_and_print("table05_runtime", table.render())
    grouped = [r for r in table.rows if r[0] == "grouped"]
    assert grouped, "grouped runtime rows missing"
