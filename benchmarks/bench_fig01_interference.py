"""Figure 1 bench: regenerate the pairwise co-location heatmap."""

from _util import run_once, save_and_print

from repro.experiments import fig01_interference


def bench_fig01(benchmark):
    table = run_once(benchmark, fig01_interference.run)
    save_and_print("fig01_interference", table.render())
    assert "max |measured - published| = 0.0000" in table.notes[0]
