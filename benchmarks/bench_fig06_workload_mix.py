"""Figure 6 bench: multi-GPU workload composition sweep."""

from _util import run_once, save_and_print

from repro.experiments import fig06_workload_mix


def bench_fig06(benchmark):
    result = run_once(benchmark, fig06_workload_mix.run)
    save_and_print("fig06_workload_mix", result.table.render())
    for fraction in (0.0, 0.2, 0.4, 0.6):
        assert result.norm_cost[("Eva", fraction)] <= 1.0
